package core

// Minimized regression tests for the recovery-path hardening the chaos
// soak uncovered. Each test documents the pre-hardening failure mode and
// fails against the pre-fix controller.

import (
	"strings"
	"testing"
	"time"

	"swift/internal/cluster"
	"swift/internal/shuffle"
)

// Pre-fix: TaskFinished reused a freed executor for the next pending task
// of the same graphlet without checking machine health, so a draining
// (read-only) machine kept receiving new tasks — violating the Section
// IV-A contract that a read-only machine only finishes what it already
// runs.
func TestNoNewTasksOnReadOnlyMachineAfterReuse(t *testing.T) {
	// 2 machines × 2 executors and a 6-task gang: pending tasks remain
	// when the gang launches, so every completion frees an executor that
	// the pre-fix controller would hand straight to the next pending
	// task, regardless of the machine's health.
	h := newHarness(t, 2, 2, DefaultOptions())
	h.submit(pipelineJob("j", 3, 3)) // 6 tasks, 4 executors: 2 pending
	if len(h.running) != 4 {
		t.Fatalf("want 4 running, got %d", len(h.running))
	}
	h.c.MachineUnhealthy(0)
	h.drain()
	marker := len(h.starts)
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete after read-only drain")
	}
	for _, s := range h.starts[marker:] {
		if h.c.Cluster().MachineOf(s.Executor) == 0 {
			t.Fatalf("task %s launched on read-only machine 0 after drain began", s.Task)
		}
	}
}

// Pre-fix: TaskOutputLost never counted retries, so an output that keeps
// being lost (flapping Cache Worker) re-ran its producer forever instead
// of failing the job once the retry budget was spent.
func TestRepeatedOutputLossIsBounded(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxTaskRetries = 3
	h := newHarness(t, 2, 4, opts)
	// A[1] never finishes, so B's graphlet stays gated and B[0] stays
	// pending — meaning A[0]'s buffered output is always "still needed"
	// when it vanishes.
	h.submit(barrierJob("j", 2, 1))
	h.finish(ref("j", "A", 0))

	for i := 0; i < opts.MaxTaskRetries+2; i++ {
		h.c.TaskOutputLost(ref("j", "A", 0))
		h.drain()
		if h.jobFailed("j") {
			break
		}
		if _, ok := h.running[ref("j", "A", 0)]; !ok {
			t.Fatal("A[0] not re-run after a needed output loss")
		}
		h.finish(ref("j", "A", 0))
	}
	if !h.jobFailed("j") {
		t.Fatalf("job survived %d output losses; output-loss recovery is unbounded", opts.MaxTaskRetries+2)
	}
	found := false
	for _, a := range h.events {
		if f, ok := a.(ActJobFailed); ok && strings.Contains(f.Reason, "lost output") {
			found = true
		}
	}
	if !found {
		t.Error("ActJobFailed does not name the lost-output retry exhaustion")
	}
}

// Pre-fix: an output lost while "not needed" (all consumers running/done)
// was forgotten entirely. When a consumer later re-entered the pending
// state — here via a crash-retry — it would launch against producer data
// that no longer exists. The fix records the loss and revives the
// producer the moment any consumer becomes pending again.
func TestLostOutputRevivedWhenConsumerRetries(t *testing.T) {
	h := newHarness(t, 2, 4, DefaultOptions())
	h.submit(barrierJob("j", 1, 2))
	h.finish(ref("j", "A", 0))
	if len(h.running) != 2 {
		t.Fatalf("B not fully running: %v", h.running)
	}
	// All B tasks are running, so losing A[0]'s output takes "no step".
	before := len(h.starts)
	h.c.TaskOutputLost(ref("j", "A", 0))
	h.drain()
	if len(h.starts) != before {
		t.Fatalf("output loss with running consumers must take no step")
	}
	// Now a B task crashes: its retry needs A's output again, so A[0]
	// must re-run before/with it.
	h.fail(ref("j", "B", 0), FailCrash)
	if _, ok := h.running[ref("j", "A", 0)]; !ok {
		t.Fatal("producer with lost output not revived when consumer re-entered pending")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete after revival")
	}
}

// Pre-fix: when recovery re-pended a producer task after its consumers
// had already launched, the consumers could occupy every executor waiting
// for data the producer can no longer regenerate — a permanent
// executor deadlock. Minimized from a chaos-soak schedule: a machine
// crash kills a finished producer's buffered output and one consumer,
// while the surviving consumer holds the last executor. The fix launches
// re-pended work upstream-first and, when the pool is dry with starved
// requests queued, preempts one downstream consumer to free an executor.
func TestRecoveryDeadlockBrokenByPreemption(t *testing.T) {
	h := newHarness(t, 2, 1, DefaultOptions())
	h.submit(barrierJob("j", 1, 2)) // A gates B; 2 executors total
	mA := h.c.Cluster().MachineOf(h.running[ref("j", "A", 0)].Executor)
	h.finish(ref("j", "A", 0))
	if len(h.running) != 2 {
		t.Fatalf("B not fully running: %v", h.running)
	}
	// The crash takes down A[0]'s buffered output and one B task; the
	// surviving B task holds the only live executor while needing A's
	// data, and A[0] needs an executor to regenerate it.
	h.c.MachineFailed(mA)
	h.drain()
	if _, ok := h.running[ref("j", "A", 0)]; !ok {
		t.Fatal("producer A[0] not relaunched: consumers hold every executor and the scheduler is deadlocked")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job did not complete after deadlock recovery")
	}
}

// MachineRecovered re-admits a drained machine: its executors return to
// the pool, the failure counter resets, and queued work can use it.
func TestMachineRecoveredReadmitsDrainedMachine(t *testing.T) {
	h := newHarness(t, 2, 2, DefaultOptions())
	h.submit(pipelineJob("j", 2, 2)) // fills all 4 executors
	h.c.MachineUnhealthy(0)
	h.drain()
	if h.c.Cluster().Machine(0).Health != cluster.ReadOnly {
		t.Fatal("machine 0 not read-only")
	}
	// Drain machine 0 completely.
	for r, a := range h.running {
		if h.c.Cluster().MachineOf(a.Executor) == 0 {
			h.finish(r)
		}
	}
	if free := h.c.Cluster().FreeExecutors(); free != 0 {
		t.Fatalf("read-only machine's executors re-pooled: %d free", free)
	}
	h.c.MachineRecovered(0)
	h.drain()
	if h.c.Cluster().Machine(0).Health != cluster.Healthy {
		t.Fatal("machine 0 not healthy after recovery")
	}
	if free := h.c.Cluster().FreeExecutors(); free != 2 {
		t.Fatalf("want 2 free executors after re-admission, got %d", free)
	}
	saw := false
	for _, a := range h.events {
		if hc, ok := a.(ActMachineHealthy); ok && hc.Machine == 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("no ActMachineHealthy emitted")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}

// CacheWorkerLost fans one worker crash out to every completed task whose
// output lived there, re-running the needed ones and degrading their
// Cache-Worker-backed out-edges to Direct.
func TestCacheWorkerLostFanOutAndDegrade(t *testing.T) {
	opts := DefaultOptions()
	// Force a Cache-Worker-dependent mode so degradation is observable.
	opts.Shuffle = FixedShuffle(shuffle.Remote)
	h := newHarness(t, 2, 4, opts)
	// A[1] keeps running, so B's graphlet is still gated and B's pending
	// tasks make A[0]'s hosted output "still needed" when the worker dies.
	h.submit(barrierJob("j", 2, 2))
	a0 := h.running[ref("j", "A", 0)].Executor
	machine := h.c.Cluster().MachineOf(a0)
	h.finish(ref("j", "A", 0))
	h.c.CacheWorkerLost(machine)
	h.drain()
	// Every A task that ran on `machine` must be re-running.
	relaunched := false
	for r, a := range h.running {
		if r.Stage == "A" && a.Attempt > 1 {
			relaunched = true
		}
	}
	if !relaunched {
		t.Fatal("cache-worker crash did not re-run hosted outputs")
	}
	if got := h.c.EdgeMode("j", "A", "B"); got != shuffle.Direct {
		t.Fatalf("edge A->B mode = %v after cache-worker loss, want Direct", got)
	}
	saw := false
	for _, a := range h.events {
		if d, ok := a.(ActShuffleDegraded); ok && d.From == "A" && d.Old == shuffle.Remote && d.New == shuffle.Direct {
			saw = true
		}
	}
	if !saw {
		t.Error("no ActShuffleDegraded emitted")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed after cache-worker loss")
	}
}

// Read-only drain end to end: a MachineUnhealthy machine finishes its
// running tasks, receives no new ones, and the cluster never re-pools its
// executors until recovery.
func TestReadOnlyDrainPath(t *testing.T) {
	h := newHarness(t, 3, 2, DefaultOptions())
	h.submit(pipelineJob("j", 4, 4)) // 8 tasks > 6 executors
	running0 := 0
	for _, a := range h.running {
		if h.c.Cluster().MachineOf(a.Executor) == 0 {
			running0++
		}
	}
	if running0 == 0 {
		t.Fatal("no tasks on machine 0")
	}
	h.c.MachineUnhealthy(0)
	h.drain()
	// Running tasks on machine 0 are NOT aborted by the drain.
	still := 0
	for _, a := range h.running {
		if h.c.Cluster().MachineOf(a.Executor) == 0 {
			still++
		}
	}
	if still != running0 {
		t.Fatalf("drain aborted running tasks: %d -> %d", running0, still)
	}
	startsBefore := len(h.starts)
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed during drain")
	}
	for _, s := range h.starts[startsBefore:] {
		if h.c.Cluster().MachineOf(s.Executor) == 0 {
			t.Fatalf("new task %s launched on read-only machine 0", s.Task)
		}
	}
	if h.c.Cluster().Machine(0).Busy() != 0 {
		t.Error("machine 0 not fully drained")
	}
}

// The paper's heartbeat intervals scale with cluster size; pin the
// 200/1000-machine threshold boundaries (Section IV-A).
func TestHeartbeatThresholdBoundaries(t *testing.T) {
	cases := []struct {
		machines int
		want     time.Duration
	}{
		{1, 5 * time.Second},
		{199, 5 * time.Second},
		{200, 5 * time.Second},
		{201, 10 * time.Second},
		{999, 10 * time.Second},
		{1000, 10 * time.Second},
		{1001, 15 * time.Second},
		{2000, 15 * time.Second},
	}
	for _, c := range cases {
		if got := HeartbeatInterval(c.machines); got != c.want {
			t.Errorf("HeartbeatInterval(%d) = %v, want %v", c.machines, got, c.want)
		}
		if got := MachineFailureDetectionDelay(c.machines); got != c.want {
			t.Errorf("MachineFailureDetectionDelay(%d) = %v, want %v", c.machines, got, c.want)
		}
	}
}

// CheckInvariants is clean across the ordinary lifecycle and recovery
// events of a job.
func TestCheckInvariantsCleanOnHappyAndRecoveryPaths(t *testing.T) {
	h := newHarness(t, 2, 4, DefaultOptions())
	check := func(stage string) {
		if v := h.c.CheckInvariants(); len(v) > 0 {
			t.Fatalf("invariant violations at %s: %v", stage, v)
		}
	}
	h.submit(barrierJob("j", 2, 2))
	check("submit")
	h.fail(ref("j", "A", 0), FailCrash)
	check("task failure")
	h.finish(ref("j", "A", 1))
	check("partial finish")
	h.c.MachineUnhealthy(1)
	h.drain()
	check("read-only")
	h.c.MachineRecovered(1)
	h.drain()
	check("recovered")
	h.finishAll()
	check("drained")
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}
