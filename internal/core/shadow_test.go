package core

import (
	"reflect"
	"testing"

	"swift/internal/cluster"
)

// shadowHarness drives a ReplicatedController the way the controller
// harness drives a plain one.
type shadowHarness struct {
	t               *testing.T
	r               *ReplicatedController
	running         map[TaskRef]ActStartTask
	runningSnapshot map[TaskRef]ActStartTask
}

func newShadowHarness(t *testing.T, ccfg cluster.Config, opts Options) *shadowHarness {
	return &shadowHarness{
		t:       t,
		r:       NewReplicatedController(cluster.New(ccfg), opts),
		running: make(map[TaskRef]ActStartTask),
	}
}

func (h *shadowHarness) drain() []Action {
	acts := h.r.Drain()
	for _, a := range acts {
		switch a := a.(type) {
		case ActStartTask:
			h.running[a.Task] = a
		case ActAbortTask:
			if cur, ok := h.running[a.Task]; ok && cur.Attempt == a.Attempt {
				delete(h.running, a.Task)
			}
		}
	}
	return acts
}

func TestShadowFailoverReproducesState(t *testing.T) {
	ccfg := cluster.Config{Machines: 3, ExecutorsPerMachine: 4}
	h := newShadowHarness(t, ccfg, DefaultOptions())
	if err := h.r.SubmitJob(barrierJob("j1", 3, 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.r.SubmitJob(pipelineJob("j2", 2, 1)); err != nil {
		t.Fatal(err)
	}
	h.drain()
	// Drive part-way: finish j1's A stage, fail one j2 task.
	h.r.TaskFinished(ref("j1", "A", 0), h.running[ref("j1", "A", 0)].Attempt)
	h.drain()
	h.r.TaskFailed(ref("j2", "A", 0), h.running[ref("j2", "A", 0)].Attempt, FailCrash)
	h.drain()
	h.r.TaskFinished(ref("j1", "A", 1), h.running[ref("j1", "A", 1)].Attempt)
	h.drain()

	// Primary "dies"; shadow replays the log.
	shadow, err := Failover(h.r.Log(), ccfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// State agreement on everything externally observable.
	for _, job := range []string{"j1", "j2"} {
		if shadow.JobDone(job) != h.r.JobDone(job) || shadow.JobFailed(job) != h.r.JobFailed(job) {
			t.Errorf("%s: job state diverged", job)
		}
	}
	for _, st := range []struct{ job, stage string }{{"j1", "A"}, {"j1", "B"}, {"j2", "A"}, {"j2", "B"}} {
		if shadow.StageComplete(st.job, st.stage) != h.r.StageComplete(st.job, st.stage) {
			t.Errorf("%s/%s: stage completion diverged", st.job, st.stage)
		}
	}
	if got, want := shadow.Cluster().BusyExecutors(), h.r.Cluster().BusyExecutors(); got != want {
		t.Errorf("busy executors: shadow %d, primary %d", got, want)
	}
	// Running attempts agree task by task.
	for ref2 := range h.running {
		pe, pa, pok := h.r.RunningTask(ref2)
		se, sa, sok := shadow.RunningTask(ref2)
		if pok != sok || pa != sa || pe != se {
			t.Errorf("%s: running attempt diverged (%v,%d,%v vs %v,%d,%v)", ref2, pe, pa, pok, se, sa, sok)
		}
	}

	// Futures agree: finishing the same tasks on both sides (in the same
	// deterministic order) produces the same action streams.
	primaryActs := fmtActions(driveToCompletion(t, h.r))
	shadowActs := fmtActions(driveToCompletion(t, shadow))
	if !reflect.DeepEqual(primaryActs, shadowActs) {
		t.Errorf("action streams diverged:\nprimary: %v\nshadow:  %v", primaryActs, shadowActs)
	}
}

// driveToCompletion finishes running tasks in deterministic order until no
// task is running, collecting all emitted actions.
func driveToCompletion(t *testing.T, r *ReplicatedController) []Action {
	t.Helper()
	var out []Action
	running := map[TaskRef]int{}
	collect := func(acts []Action) {
		for _, a := range acts {
			out = append(out, a)
			switch a := a.(type) {
			case ActStartTask:
				running[a.Task] = a.Attempt
			case ActAbortTask:
				if running[a.Task] == a.Attempt {
					delete(running, a.Task)
				}
			}
		}
	}
	// Seed from current state: finish whatever RunningTask reports for
	// known refs is not enumerable, so tests must have drained into the
	// harness already; here we reconstruct by probing all task refs of
	// all logged jobs.
	for _, ev := range r.Log() {
		if ev.Kind != EvSubmitJob {
			continue
		}
		for _, s := range ev.Job.Stages() {
			for i := 0; i < s.Tasks; i++ {
				tr := TaskRef{Job: ev.Job.ID, Stage: s.Name, Index: i}
				if _, attempt, ok := r.RunningTask(tr); ok {
					running[tr] = attempt
				}
			}
		}
	}
	for len(running) > 0 {
		// Deterministic order: smallest ref first.
		var pick *TaskRef
		for tr := range running {
			if pick == nil || less(tr, *pick) {
				c := tr
				pick = &c
			}
		}
		attempt := running[*pick]
		delete(running, *pick)
		r.TaskFinished(*pick, attempt)
		collect(r.Drain())
	}
	return out
}

func less(a, b TaskRef) bool {
	if a.Job != b.Job {
		return a.Job < b.Job
	}
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	return a.Index < b.Index
}

func fmtActions(acts []Action) []string {
	var out []string
	for _, a := range acts {
		switch a := a.(type) {
		case ActStartTask:
			out = append(out, "start "+a.Task.String())
		case ActJobCompleted:
			out = append(out, "done "+a.Job)
		case ActJobFailed:
			out = append(out, "failed "+a.Job)
		case ActResend:
			out = append(out, "resend "+a.To.String())
		}
	}
	return out
}

func TestShadowCompact(t *testing.T) {
	ccfg := cluster.Config{Machines: 2, ExecutorsPerMachine: 4}
	h := newShadowHarness(t, ccfg, DefaultOptions())
	if err := h.r.SubmitJob(pipelineJob("done-job", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := h.r.SubmitJob(pipelineJob("live-job", 1, 1)); err != nil {
		t.Fatal(err)
	}
	h.drain()
	// Complete the first job only.
	h.r.TaskFinished(ref("done-job", "A", 0), h.running[ref("done-job", "A", 0)].Attempt)
	h.drain()
	h.r.TaskFinished(ref("done-job", "B", 0), h.running[ref("done-job", "B", 0)].Attempt)
	h.drain()
	before := len(h.r.Log())
	h.r.Compact()
	after := len(h.r.Log())
	if after >= before {
		t.Errorf("compact did not shrink log: %d -> %d", before, after)
	}
	// Failover from the compacted log still reproduces the live job.
	shadow, err := Failover(h.r.Log(), ccfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if shadow.JobDone("live-job") || shadow.JobFailed("live-job") {
		t.Error("live job state wrong after compacted replay")
	}
	if _, _, ok := shadow.RunningTask(ref("live-job", "A", 0)); !ok {
		t.Error("live job tasks not running after compacted replay")
	}
}

func TestFailoverRejectsCorruptLog(t *testing.T) {
	bad := []Event{{Kind: EvSubmitJob, Job: nil}}
	if _, err := Failover(bad, cluster.Config{Machines: 1, ExecutorsPerMachine: 1}, DefaultOptions()); err == nil {
		t.Error("nil-job event accepted")
	}
	bad2 := []Event{{Kind: EventKind(99)}}
	if _, err := Failover(bad2, cluster.Config{Machines: 1, ExecutorsPerMachine: 1}, DefaultOptions()); err == nil {
		t.Error("unknown event kind accepted")
	}
}
