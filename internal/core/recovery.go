package core

import (
	"fmt"
	"sort"

	"swift/internal/cluster"
	"swift/internal/shuffle"
)

// TaskFailed handles a detected task failure (Section IV-B). Stale attempt
// numbers are ignored. Application-logic errors skip recovery entirely
// (Section IV-C, "Avoiding Useless Failure Recovery").
func (c *Controller) TaskFailed(ref TaskRef, attempt int, kind FailureKind) {
	m := c.jobs[ref.Job]
	if m == nil || m.failed || m.done {
		return
	}
	st, ok := m.stages[ref.Stage]
	if !ok || ref.Index < 0 || ref.Index >= len(st.status) {
		return
	}
	if st.status[ref.Index] != tRunning || st.attempt[ref.Index] != attempt {
		return
	}
	c.opts.Obs.TaskFailed(ref.Job, ref.Stage, ref.Index, attempt, kind.String())

	if kind == FailAppError {
		c.failJob(m, fmt.Sprintf("application error in %s", ref))
		return
	}

	// Track machine failure bursts for the health monitor.
	if e := st.executor[ref.Index]; e >= 0 {
		mid := c.cl.MachineOf(e)
		if c.cl.RecordTaskFailure(mid) >= c.opts.UnhealthyThreshold && c.cl.Machine(mid).Health == cluster.Healthy {
			c.MachineUnhealthy(mid)
		}
	}

	if c.opts.Recovery == JobRestart {
		c.restartJob(m)
		return
	}

	st.retries[ref.Index]++
	if st.retries[ref.Index] > c.opts.MaxTaskRetries {
		c.failJob(m, fmt.Sprintf("task %s exceeded %d retries", ref, c.opts.MaxTaskRetries))
		return
	}
	c.releaseRunning(m, ref)
	c.markPending(m, ref, StartRetry)

	// Non-idempotent tasks may have streamed rows that successors
	// already consumed; those successors must re-run too (Fig. 6b). The
	// cascade stays within the graphlet: cross-graphlet consumers read
	// from Cache Workers whose contents the re-run will replace before
	// the consumer graphlet is submitted (Figs. 7a/7b).
	if !m.job.Stage(ref.Stage).Idempotent {
		c.cascade(m, ref.Stage, m.stages[ref.Stage].graphlet, map[string]bool{ref.Stage: true})
	}

	c.requeue(m, st.graphlet)
	c.schedule()
}

// cascade re-runs every started task of the successor stages of `stage`
// within graphlet g, transitively.
func (c *Controller) cascade(m *monitor, stage string, g int, visited map[string]bool) {
	for _, e := range m.job.Out(stage) {
		if visited[e.To] || m.owner[e.To] != g {
			continue
		}
		visited[e.To] = true
		st := m.stages[e.To]
		for i := range st.status {
			if !st.started[i] {
				continue
			}
			ref := TaskRef{Job: m.job.ID, Stage: e.To, Index: i}
			switch st.status[i] {
			case tRunning:
				c.emit(ActAbortTask{Task: ref, Executor: st.executor[i], Attempt: st.attempt[i]})
				c.releaseRunning(m, ref)
				c.markPending(m, ref, StartCascade)
			case tDone:
				st.done--
				c.markPending(m, ref, StartCascade)
			case tPending:
				// already awaiting a fresh run; nothing to cascade
			}
		}
		c.requeue(m, g)
		c.cascade(m, e.To, g, visited)
	}
}

// releaseRunning returns a running task's executor to the pool and fixes
// the graphlet's running count. The task's status is left to the caller.
func (c *Controller) releaseRunning(m *monitor, ref TaskRef) {
	st := m.stages[ref.Stage]
	if st.status[ref.Index] != tRunning {
		return
	}
	run := m.gruns[st.graphlet]
	run.running--
	if e := st.executor[ref.Index]; e >= 0 {
		c.cl.Release([]cluster.ExecutorID{e})
	}
	st.status[ref.Index] = tPending
	c.snapDelta(m, 1, -1, 0)
}

// markPending resets a task for re-execution with the given reason and
// appends it to its graphlet's pending queue. A task that re-enters the
// pending state needs its input data again, so any producer whose buffered
// output was lost under the "no step taken" rule must re-run first; those
// producers are revived here, transitively up the DAG.
func (c *Controller) markPending(m *monitor, ref TaskRef, reason StartReason) {
	st := m.stages[ref.Stage]
	c.snapMarkPending(m, st.status[ref.Index])
	st.status[ref.Index] = tPending
	st.reason[ref.Index] = reason
	st.lost[ref.Index] = false // a re-run regenerates the output
	if st.homes != nil {
		st.homes[ref.Index] = nil // stale copies; re-replicated at finish
	}
	run := m.gruns[st.graphlet]
	run.pending = append(run.pending, ref)
	if !run.disordered {
		// Launch selection must restore topological order, and the
		// scheduler's deadlock check watches for disordered runs.
		run.disordered = true
		c.disorderedRuns++
	}
	if run.status == gDone {
		run.status = gQueued
	}
	c.reviveLostInputs(m, ref.Stage)
}

// reviveLostInputs re-runs every completed producer task of `stage` whose
// buffered output was lost while "not needed" — a consumer of that output
// has just become pending again, so the data is needed after all. The
// recursion through markPending walks producers upward and terminates
// because each revived task leaves the done+lost state and the DAG is
// acyclic.
func (c *Controller) reviveLostInputs(m *monitor, stage string) {
	for _, e := range m.job.In(stage) {
		pst := m.stages[e.From]
		revived := false
		for i := range pst.status {
			if pst.status[i] != tDone || !pst.lost[i] {
				continue
			}
			pst.done--
			c.markPending(m, TaskRef{Job: m.job.ID, Stage: e.From, Index: i}, StartRetry)
			revived = true
		}
		if revived {
			c.requeue(m, pst.graphlet)
		}
	}
}

// MachineFailed handles a detected machine crash: every executor on the
// machine is revoked, running tasks there fail, and completed tasks whose
// Cache Worker output lived on the machine and is still needed are re-run
// (their consumers will fetch the regenerated data; Section IV-B2).
func (c *Controller) MachineFailed(id cluster.MachineID) {
	// Fail running tasks hosted there, then mark completed-but-needed
	// outputs lost. Collect first: recovery mutates state.
	type victim struct {
		ref     TaskRef
		attempt int
		running bool
	}
	var victims []victim
	for _, jobID := range c.order {
		m := c.jobs[jobID]
		if m == nil || m.failed || m.done {
			continue
		}
		for _, name := range m.job.StageNames() {
			st := m.stages[name]
			for i := range st.status {
				if st.executor[i] < 0 || c.cl.MachineOf(st.executor[i]) != id {
					continue
				}
				ref := TaskRef{Job: jobID, Stage: name, Index: i}
				switch st.status[i] {
				case tRunning:
					victims = append(victims, victim{ref, st.attempt[i], true})
				case tDone:
					if st.homes != nil && len(st.homes[i]) > 0 {
						// Replicated output: the replica pass below decides
						// whether any copy survived the machine.
						continue
					}
					victims = append(victims, victim{ref, st.attempt[i], false})
				case tPending:
					// not placed anywhere: the machine's death cannot
					// have touched it
				}
			}
		}
	}
	// Running tasks recover first: a consumer re-marked pending by that
	// pass re-needs its producers' buffered outputs, which the
	// lost-output pass below then regenerates.
	sort.SliceStable(victims, func(a, b int) bool {
		return victims[a].running && !victims[b].running
	})
	c.cl.SetHealth(id, cluster.Failed)
	c.opts.Obs.MachineFailed(int(id))
	c.deferSchedule = true
	for _, v := range victims {
		m := c.jobs[v.ref.Job]
		if m == nil || m.failed || m.done {
			continue
		}
		if v.running {
			c.emit(ActAbortTask{Task: v.ref, Executor: m.stages[v.ref.Stage].executor[v.ref.Index], Attempt: v.attempt})
			c.TaskFailed(v.ref, v.attempt, FailCrash)
		} else {
			// Lost output of a finished task: TaskOutputLost applies
			// the "no step taken" rule (or restarts the job under the
			// baseline policy).
			c.TaskOutputLost(v.ref)
		}
	}
	if c.opts.ShuffleReplicas > 1 {
		// Replicated outputs with a copy on the dead machine: surviving
		// replicas promote silently, only fully-orphaned outputs recover.
		for _, ref := range c.strikeReplica(id) {
			c.TaskOutputLost(ref)
		}
	}
	c.deferSchedule = false
	c.schedule()
}

// strikeReplica removes a dead machine from every finished task's replica
// set. A task whose serving (head) copy died but has survivors promotes the
// next replica in place — counted as a replica recovery, no scheduling step.
// Only tasks whose LAST copy died are returned; they need the full
// output-lost treatment.
func (c *Controller) strikeReplica(id cluster.MachineID) []TaskRef {
	var orphans []TaskRef
	for _, jobID := range c.order {
		m := c.jobs[jobID]
		if m == nil || m.failed || m.done {
			continue
		}
		for _, name := range m.job.StageNames() {
			st := m.stages[name]
			if st.homes == nil {
				continue
			}
			for i := range st.status {
				homes := st.homes[i]
				if st.status[i] != tDone || len(homes) == 0 {
					continue
				}
				pos := -1
				for j, h := range homes {
					if h == id {
						pos = j
						break
					}
				}
				if pos < 0 {
					continue
				}
				homes = append(homes[:pos], homes[pos+1:]...)
				st.homes[i] = homes
				if len(homes) == 0 {
					orphans = append(orphans, TaskRef{Job: jobID, Stage: name, Index: i})
					continue
				}
				if pos == 0 {
					c.replicaHits++
					c.opts.Obs.ReplicaServed(jobID, name, i, int(homes[0]))
				}
			}
		}
	}
	return orphans
}

// outputStillNeeded reports whether some consumer task has yet to receive
// the stage's buffered output. Running consumers already received it —
// pipeline consumers by streaming, barrier consumers by fetching from the
// Cache Worker at launch — so only never-started (pending) consumer tasks
// still need it ("If T6 and T7 have received the desired data from T4, no
// step will be taken").
func (c *Controller) outputStillNeeded(m *monitor, stage string) bool {
	outs := m.job.Out(stage)
	if len(outs) == 0 {
		return false // sink output already delivered to the client
	}
	for _, e := range outs {
		st := m.stages[e.To]
		for i := range st.status {
			if st.status[i] == tPending {
				return true
			}
		}
	}
	return false
}

// TaskOutputLost reports that the buffered output of a completed task was
// lost (e.g. its Cache Worker's memory was reclaimed or the hosting process
// died without taking the machine down). If every consumer already received
// the data, no step is taken; otherwise the task re-runs so consumers can
// re-fetch (the Fig. 6a / Fig. 7 semantics).
func (c *Controller) TaskOutputLost(ref TaskRef) {
	m := c.jobs[ref.Job]
	if m == nil || m.failed || m.done {
		return
	}
	st, ok := m.stages[ref.Stage]
	if !ok || ref.Index < 0 || ref.Index >= len(st.status) || st.status[ref.Index] != tDone {
		return
	}
	if c.opts.Recovery == JobRestart {
		// The baseline policy restarts on any failure; the "no step
		// taken" shortcut below is Swift's fine-grained intelligence.
		c.opts.Obs.OutputLost(ref.Job, ref.Stage, ref.Index, "restart")
		c.restartJob(m)
		return
	}
	if st.homes != nil {
		// Reaching here means every copy is gone (a direct loss report
		// bypasses replicas by design — e.g. the buffer was evicted fleet-
		// wide); clear the stale replica set.
		st.homes[ref.Index] = nil
	}
	if !c.outputStillNeeded(m, ref.Stage) {
		// "No step will be taken" — but remember the loss so a consumer
		// that later re-enters the pending state revives this producer.
		st.lost[ref.Index] = true
		c.opts.Obs.OutputLost(ref.Job, ref.Stage, ref.Index, "no-step")
		return
	}
	c.opts.Obs.OutputLost(ref.Job, ref.Stage, ref.Index, "rerun")
	c.recomputes++
	// Regenerating a lost output is a retry like any other: without this
	// bound, an output that keeps getting lost (flapping Cache Worker,
	// repeatedly crashing machine) re-runs the task forever.
	st.retries[ref.Index]++
	if st.retries[ref.Index] > c.opts.MaxTaskRetries {
		c.failJob(m, fmt.Sprintf("task %s exceeded %d retries regenerating lost output", ref, c.opts.MaxTaskRetries))
		return
	}
	st.done--
	c.markPending(m, ref, StartRetry)
	if !m.job.Stage(ref.Stage).Idempotent {
		c.cascade(m, ref.Stage, st.graphlet, map[string]bool{ref.Stage: true})
	}
	c.requeue(m, st.graphlet)
	c.schedule()
}

// MachineUnhealthy applies the health monitor's read-only policy: the
// machine finishes its running tasks but receives no new ones.
func (c *Controller) MachineUnhealthy(id cluster.MachineID) {
	if c.cl.Machine(id).Health != cluster.Healthy {
		return
	}
	c.cl.SetHealth(id, cluster.ReadOnly)
	c.emit(ActMachineReadOnly{Machine: id})
}

// MachineRecovered re-admits a machine to the pool: a read-only machine
// that stayed healthy through an observation window rejoins with its idle
// executors, and a crashed machine that rebooted rejoins with a fresh
// executor set. The failure counter resets so one old burst cannot
// immediately re-drain it, and the scheduler runs because capacity grew.
func (c *Controller) MachineRecovered(id cluster.MachineID) {
	if c.cl.Machine(id).Health == cluster.Healthy {
		return
	}
	c.cl.ResetTaskFailures(id)
	c.cl.SetHealth(id, cluster.Healthy)
	c.emit(ActMachineHealthy{Machine: id})
	c.schedule()
}

// CacheWorkerLost handles the crash of one machine's Cache Worker process
// (the machine itself survives): every buffered output hosted there is
// gone. Each lost key is reported to the recovery logic individually —
// TaskOutputLost applies the "no step taken" rule per task — and shuffle
// edges out of the affected stages that depended on Cache Workers degrade
// to Direct for the regenerated data, so the re-run cannot be taken down
// by the same worker again. Scheduling is deferred until the whole storm
// is processed so recovery decisions see the full damage.
func (c *Controller) CacheWorkerLost(id cluster.MachineID) {
	if c.opts.ShuffleReplicas > 1 {
		// Replica-aware path: consult surviving copies before falling back
		// to producer recompute. Only fully-orphaned outputs recover, and
		// only their edges degrade — replicated data that failed over keeps
		// its Cache-Worker-backed mode.
		c.opts.Obs.CacheWorkerLost(int(id))
		orphans := c.strikeReplica(id)
		c.deferSchedule = true
		for _, ref := range orphans {
			m := c.jobs[ref.Job]
			if m == nil || m.failed || m.done {
				continue
			}
			c.degradeEdges(m, ref.Stage)
			c.TaskOutputLost(ref)
		}
		c.deferSchedule = false
		c.schedule()
		return
	}
	var lost []TaskRef
	for _, jobID := range c.order {
		m := c.jobs[jobID]
		if m == nil || m.failed || m.done {
			continue
		}
		for _, name := range m.job.StageNames() {
			st := m.stages[name]
			for i := range st.status {
				if st.status[i] == tDone && st.executor[i] >= 0 && c.cl.MachineOf(st.executor[i]) == id {
					lost = append(lost, TaskRef{Job: jobID, Stage: name, Index: i})
				}
			}
		}
	}
	c.opts.Obs.CacheWorkerLost(int(id))
	c.deferSchedule = true
	for _, ref := range lost {
		m := c.jobs[ref.Job]
		if m == nil || m.failed || m.done {
			continue
		}
		c.degradeEdges(m, ref.Stage)
		c.TaskOutputLost(ref)
	}
	c.deferSchedule = false
	c.schedule()
}

// degradeEdges switches Cache-Worker-dependent shuffle modes (Local,
// Remote) of a stage's out-edges to Direct after the hosting Cache Worker
// died, emitting one action per degraded edge.
func (c *Controller) degradeEdges(m *monitor, stage string) {
	for _, e := range m.job.Out(stage) {
		k := edgeKey{e.From, e.To}
		old := m.modes[k]
		if old != shuffle.Local && old != shuffle.Remote {
			continue
		}
		m.modes[k] = shuffle.Direct
		c.emit(ActShuffleDegraded{Job: m.job.ID, From: e.From, To: e.To, Old: old, New: shuffle.Direct})
	}
}

// ExecutorRestarted handles an executor process reporting a fresh start
// (the lazy self-reporting channel of Section IV-A): whatever task the
// controller believed was running there has died.
func (c *Controller) ExecutorRestarted(e cluster.ExecutorID) {
	for _, jobID := range c.order {
		m := c.jobs[jobID]
		if m == nil || m.failed || m.done {
			continue
		}
		for _, name := range m.job.StageNames() {
			st := m.stages[name]
			for i := range st.status {
				if st.status[i] == tRunning && st.executor[i] == e {
					c.TaskFailed(TaskRef{Job: jobID, Stage: name, Index: i}, st.attempt[i], FailCrash)
					return
				}
			}
		}
	}
}

// restartJob implements the JobRestart baseline policy: abort everything
// and start over from the first graphlet.
func (c *Controller) restartJob(m *monitor) {
	c.abortAll(m)
	m.restarts++
	// abortAll released every running task to pending, so only completed
	// tasks change aggregate state in the wholesale reset below.
	doneTasks := 0
	for _, st := range m.stages {
		doneTasks += st.done
	}
	c.snapDelta(m, doneTasks, 0, -doneTasks)
	for name, st := range m.stages {
		tasks := m.job.Stage(name).Tasks
		*st = stageState{
			graphlet: st.graphlet,
			status:   make([]taskStatus, tasks),
			executor: make([]cluster.ExecutorID, tasks),
			attempt:  st.attempt, // attempts keep increasing across restarts
			retries:  make([]int, tasks),
			started:  make([]bool, tasks),
			reason:   make([]StartReason, tasks),
			lost:     make([]bool, tasks),
		}
		for i := range st.executor {
			st.executor[i] = -1
		}
	}
	// Drop queued items of this job and rebuild graphlet runs.
	var q []reqItem
	for _, it := range c.queue {
		if it.job != m.job.ID {
			q = append(q, it)
		} else {
			m.tc.Queued--
		}
	}
	c.queue = q
	c.dropDisordered(m)
	m.gruns = c.buildGraphletRuns(m)
	c.emit(ActJobRestarted{Job: m.job.ID})
	c.enqueueReady(m)
	c.schedule()
}

// abortAll aborts every running task of a job and releases its executors.
func (c *Controller) abortAll(m *monitor) {
	for _, name := range m.job.StageNames() {
		st := m.stages[name]
		for i := range st.status {
			if st.status[i] == tRunning {
				ref := TaskRef{Job: m.job.ID, Stage: name, Index: i}
				c.emit(ActAbortTask{Task: ref, Executor: st.executor[i], Attempt: st.attempt[i]})
				c.releaseRunning(m, ref)
			}
		}
	}
}

// dropDisordered removes a job's graphlet runs from the disordered count
// (they are being discarded: job restart or abandonment).
func (c *Controller) dropDisordered(m *monitor) {
	for _, run := range m.gruns {
		if run.disordered {
			run.disordered = false
			c.disorderedRuns--
		}
	}
}

// CancelJob aborts a live job on client request: every running task is
// aborted, executors return to the pool, and the job leaves the live set
// as failed with the given reason.
func (c *Controller) CancelJob(job, reason string) error {
	m := c.jobs[job]
	if m == nil {
		return fmt.Errorf("core: unknown job %q", job)
	}
	if m.done || m.failed {
		return fmt.Errorf("core: job %q already terminal", job)
	}
	c.failJob(m, "cancelled: "+reason)
	return nil
}

// failJob abandons a job.
func (c *Controller) failJob(m *monitor, reason string) {
	c.abortAll(m)
	m.failed = true
	c.snapClose(m)
	c.dropDisordered(m)
	var q []reqItem
	for _, it := range c.queue {
		if it.job != m.job.ID {
			q = append(q, it)
		} else {
			m.tc.Queued--
		}
	}
	c.queue = q
	c.emit(ActJobFailed{Job: m.job.ID, Reason: reason})
	c.schedule()
}
