package core

import (
	"testing"

	"swift/internal/cluster"
	"swift/internal/dag"
	"swift/internal/shuffle"
)

// harness drives a Controller from tests: it tracks running tasks from the
// action stream and lets tests complete or fail them.
type harness struct {
	t       *testing.T
	c       *Controller
	running map[TaskRef]ActStartTask
	starts  []ActStartTask
	resends []ActResend
	events  []Action
}

func newHarness(t *testing.T, machines, execsPer int, opts Options) *harness {
	cl := cluster.New(cluster.Config{Machines: machines, ExecutorsPerMachine: execsPer})
	h := &harness{t: t, c: NewController(cl, opts), running: make(map[TaskRef]ActStartTask)}
	return h
}

func (h *harness) drain() {
	for _, a := range h.c.Drain() {
		h.events = append(h.events, a)
		switch a := a.(type) {
		case ActStartTask:
			h.running[a.Task] = a
			h.starts = append(h.starts, a)
		case ActAbortTask:
			if cur, ok := h.running[a.Task]; ok && cur.Attempt == a.Attempt {
				delete(h.running, a.Task)
			}
		case ActResend:
			h.resends = append(h.resends, a)
		}
	}
}

func (h *harness) submit(j *dag.Job) {
	h.t.Helper()
	if err := h.c.SubmitJob(j); err != nil {
		h.t.Fatal(err)
	}
	h.drain()
}

func (h *harness) finish(ref TaskRef) {
	h.t.Helper()
	a, ok := h.running[ref]
	if !ok {
		h.t.Fatalf("finish of non-running task %s", ref)
	}
	delete(h.running, ref)
	h.c.TaskFinished(ref, a.Attempt)
	h.drain()
}

// finishAll completes running tasks (including newly started waves) until
// none remain or the predicate stops matching.
func (h *harness) finishAll() {
	for len(h.running) > 0 {
		for ref := range h.running {
			h.finish(ref)
			break
		}
	}
}

func (h *harness) fail(ref TaskRef, kind FailureKind) {
	h.t.Helper()
	a, ok := h.running[ref]
	if !ok {
		h.t.Fatalf("fail of non-running task %s", ref)
	}
	delete(h.running, ref)
	h.c.TaskFailed(ref, a.Attempt, kind)
	h.drain()
}

func (h *harness) completed(job string) bool {
	for _, a := range h.events {
		if c, ok := a.(ActJobCompleted); ok && c.Job == job {
			return true
		}
	}
	return false
}

func (h *harness) jobFailed(job string) bool {
	for _, a := range h.events {
		if c, ok := a.(ActJobFailed); ok && c.Job == job {
			return true
		}
	}
	return false
}

func pipelineJob(id string, aTasks, bTasks int) *dag.Job {
	return dag.NewBuilder(id).
		Stage("A", aTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("B", bTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpAdhocSink)).
		Pipeline("A", "B", 1<<20).
		MustBuild()
}

func barrierJob(id string, aTasks, bTasks int) *dag.Job {
	return dag.NewBuilder(id).
		Stage("A", aTasks, dag.Op(dag.OpTableScan), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite)).
		Stage("B", bTasks, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpAdhocSink)).
		Barrier("A", "B", 1<<20).
		MustBuild()
}

func ref(job, stage string, i int) TaskRef { return TaskRef{Job: job, Stage: stage, Index: i} }

func TestSimplePipelineJobCompletes(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(pipelineJob("j", 3, 2))
	// Pipeline graphlet: all 5 tasks gang launched together.
	if len(h.running) != 5 {
		t.Fatalf("running = %d, want 5", len(h.running))
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
	if h.c.Cluster().BusyExecutors() != 0 {
		t.Errorf("executors leaked: %d busy", h.c.Cluster().BusyExecutors())
	}
	if !h.c.JobDone("j") || h.c.JobFailed("j") {
		t.Error("job state wrong")
	}
}

func TestBarrierDefersSecondGraphlet(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(barrierJob("j", 2, 3))
	if len(h.running) != 2 {
		t.Fatalf("running = %d, want only stage A's 2 tasks", len(h.running))
	}
	h.finish(ref("j", "A", 0))
	if _, ok := h.running[ref("j", "B", 0)]; ok {
		t.Fatal("B started before A completed")
	}
	h.finish(ref("j", "A", 1))
	if len(h.running) != 3 {
		t.Fatalf("after A done, running = %d, want B's 3 tasks", len(h.running))
	}
	if !h.c.StageComplete("j", "A") || h.c.StageComplete("j", "B") {
		t.Error("StageComplete wrong")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}

func TestWavesUnderPartialAllocation(t *testing.T) {
	// 2 executors for 6 tasks: waves of 2.
	h := newHarness(t, 1, 2, DefaultOptions())
	h.submit(pipelineJob("j", 6, 1))
	if len(h.running) != 2 {
		t.Fatalf("first wave = %d, want 2", len(h.running))
	}
	h.finishAll() // each finish frees an executor for the next pending task
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
	if len(h.starts) != 7 {
		t.Errorf("total starts = %d, want 7", len(h.starts))
	}
}

func TestStrictGangWaitsForFullAllocation(t *testing.T) {
	opts := DefaultOptions()
	opts.Partition = WholeJobPartition
	opts.StrictGang = true
	h := newHarness(t, 1, 4, opts)
	h.submit(pipelineJob("big", 4, 2)) // needs 6 > 4 executors
	if len(h.running) != 0 {
		t.Fatalf("strict gang launched %d tasks with insufficient executors", len(h.running))
	}
	// A small job behind it can still be served (backfill).
	h.submit(pipelineJob("small", 2, 1))
	if len(h.running) != 3 {
		t.Fatalf("backfill failed: running = %d, want 3", len(h.running))
	}
	h.finishAll()
	if !h.completed("small") || h.completed("big") {
		t.Fatal("wrong completion states")
	}
}

func TestIdempotentRetryWithResend(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(pipelineJob("j", 2, 2))
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "A", 1))
	victim := ref("j", "B", 0)
	first := h.running[victim].Attempt
	h.fail(victim, FailCrash)
	again, ok := h.running[victim]
	if !ok {
		t.Fatal("failed task not relaunched")
	}
	if again.Attempt != first+1 || again.Reason != StartRetry {
		t.Errorf("relaunch attempt=%d reason=%v", again.Attempt, again.Reason)
	}
	// Same-graphlet pipeline parent must re-send its buffered output.
	if len(h.resends) != 1 || h.resends[0].FromStage != "A" || h.resends[0].To != victim {
		t.Errorf("resends = %v", h.resends)
	}
	// A and B's other task must not re-run.
	for _, s := range h.starts {
		if s.Task.Stage == "A" && s.Attempt > 1 {
			t.Error("idempotent recovery re-ran a predecessor")
		}
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed after recovery")
	}
}

func TestNonIdempotentCascade(t *testing.T) {
	j := dag.NewJob("j")
	for _, s := range []*dag.Stage{
		{Name: "A", Tasks: 1, Idempotent: false},
		{Name: "B", Tasks: 2, Idempotent: true},
		{Name: "C", Tasks: 1, Idempotent: true},
	} {
		if err := j.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []*dag.Edge{{From: "A", To: "B", Mode: dag.Pipeline}, {From: "B", To: "C", Mode: dag.Pipeline}} {
		if err := j.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(j)
	if len(h.running) != 4 {
		t.Fatalf("running = %d", len(h.running))
	}
	// Let one successor finish, keep others running, then fail A.
	h.finish(ref("j", "B", 0))
	h.fail(ref("j", "A", 0), FailCrash)
	// A re-runs, finished B[0] re-runs (cascade), running B[1] and C[0]
	// aborted and re-run.
	wantRunning := map[TaskRef]bool{
		ref("j", "A", 0): true, ref("j", "B", 0): true,
		ref("j", "B", 1): true, ref("j", "C", 0): true,
	}
	if len(h.running) != len(wantRunning) {
		t.Fatalf("running after cascade = %v", h.running)
	}
	for r := range wantRunning {
		if _, ok := h.running[r]; !ok {
			t.Errorf("missing relaunch of %s", r)
		}
	}
	for _, s := range h.starts[4:] {
		if s.Task.Stage != "A" && s.Reason != StartCascade {
			t.Errorf("successor %s relaunched with reason %v", s.Task, s.Reason)
		}
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}

func TestAppErrorFailsJobWithoutRecovery(t *testing.T) {
	h := newHarness(t, 2, 2, DefaultOptions())
	h.submit(pipelineJob("j", 1, 1))
	h.fail(ref("j", "A", 0), FailAppError)
	if !h.jobFailed("j") {
		t.Fatal("job not failed")
	}
	if len(h.running) != 0 {
		t.Errorf("tasks still running after job failure: %v", h.running)
	}
	if h.c.Cluster().BusyExecutors() != 0 {
		t.Error("executors leaked after job failure")
	}
	if !h.c.JobFailed("j") {
		t.Error("JobFailed() = false")
	}
}

func TestRetryExhaustionFailsJob(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxTaskRetries = 2
	h := newHarness(t, 2, 2, opts)
	h.submit(pipelineJob("j", 1, 1))
	for i := 0; i < 2; i++ {
		h.fail(ref("j", "A", 0), FailCrash)
		if h.jobFailed("j") {
			t.Fatalf("job failed after %d retries, limit is 2", i+1)
		}
	}
	h.fail(ref("j", "A", 0), FailCrash)
	if !h.jobFailed("j") {
		t.Fatal("job not failed after exhausting retries")
	}
}

func TestJobRestartPolicy(t *testing.T) {
	opts := DefaultOptions()
	opts.Recovery = JobRestart
	h := newHarness(t, 4, 4, opts)
	h.submit(barrierJob("j", 2, 2))
	h.finish(ref("j", "A", 0))
	h.fail(ref("j", "A", 1), FailCrash)
	restarted := false
	for _, a := range h.events {
		if _, ok := a.(ActJobRestarted); ok {
			restarted = true
		}
	}
	if !restarted {
		t.Fatal("no restart action")
	}
	if h.c.Restarts("j") != 1 {
		t.Errorf("restarts = %d", h.c.Restarts("j"))
	}
	// Everything (including the finished A[0]) runs again.
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed after restart")
	}
	aStarts := 0
	for _, s := range h.starts {
		if s.Task == ref("j", "A", 0) {
			aStarts++
		}
	}
	if aStarts != 2 {
		t.Errorf("A[0] started %d times, want 2", aStarts)
	}
}

func TestMachineFailureRecoversRunningAndLostOutputs(t *testing.T) {
	h := newHarness(t, 2, 4, DefaultOptions())
	h.submit(barrierJob("j", 2, 2))
	// Finish A entirely; B starts; then the machine hosting A[0]'s
	// output fails while B is running.
	a0Exec := h.running[ref("j", "A", 0)].Executor
	failedMachine := h.c.Cluster().MachineOf(a0Exec)
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "A", 1))
	if len(h.running) != 2 {
		t.Fatalf("B not started: %v", h.running)
	}
	h.c.MachineFailed(failedMachine)
	h.drain()
	// A[0]'s Cache Worker output was lost and B is not done consuming:
	// A[0] must re-run. Any B task on the failed machine re-runs too.
	if _, ok := h.running[ref("j", "A", 0)]; !ok {
		t.Error("lost output of A[0] not regenerated")
	}
	if h.c.Cluster().Machine(failedMachine).Health != cluster.Failed {
		t.Error("machine not marked failed")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed after machine failure")
	}
	// New allocations avoided the failed machine.
	for _, s := range h.starts {
		if s.Attempt > 1 && h.c.Cluster().MachineOf(s.Executor) == failedMachine {
			t.Error("recovery task scheduled on failed machine")
		}
	}
}

func TestMachineFailureNoStepWhenConsumersDone(t *testing.T) {
	h := newHarness(t, 2, 4, DefaultOptions())
	h.submit(barrierJob("j", 1, 1))
	aExec := h.running[ref("j", "A", 0)].Executor
	machine := h.c.Cluster().MachineOf(aExec)
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "B", 0))
	if !h.completed("j") {
		t.Fatal("job should be done")
	}
	before := len(h.starts)
	h.c.MachineFailed(machine)
	h.drain()
	if len(h.starts) != before {
		t.Error("machine failure after job completion triggered recovery")
	}
}

func TestUnhealthyMachineGoesReadOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.UnhealthyThreshold = 2
	h := newHarness(t, 2, 8, opts)
	h.submit(pipelineJob("j", 4, 4))
	// Fail tasks on machine 0 repeatedly.
	fails := 0
	for fails < 2 {
		var target TaskRef
		found := false
		for r, a := range h.running {
			if h.c.Cluster().MachineOf(a.Executor) == 0 {
				target, found = r, true
				break
			}
		}
		if !found {
			t.Fatal("no running task on machine 0")
		}
		h.fail(target, FailCrash)
		fails++
	}
	if h.c.Cluster().Machine(0).Health != cluster.ReadOnly {
		t.Errorf("machine 0 health = %v, want read-only", h.c.Cluster().Machine(0).Health)
	}
	sawAction := false
	for _, a := range h.events {
		if ro, ok := a.(ActMachineReadOnly); ok && ro.Machine == 0 {
			sawAction = true
		}
	}
	if !sawAction {
		t.Error("no ActMachineReadOnly emitted")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}

func TestExecutorRestartedRecoversItsTask(t *testing.T) {
	h := newHarness(t, 2, 2, DefaultOptions())
	h.submit(pipelineJob("j", 1, 1))
	a := h.running[ref("j", "A", 0)]
	delete(h.running, ref("j", "A", 0))
	h.c.ExecutorRestarted(a.Executor)
	h.drain()
	if got, ok := h.running[ref("j", "A", 0)]; !ok || got.Attempt != a.Attempt+1 {
		t.Fatalf("task not recovered after executor restart: %v", h.running)
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}

func TestStaleEventsIgnored(t *testing.T) {
	h := newHarness(t, 2, 2, DefaultOptions())
	h.submit(pipelineJob("j", 1, 1))
	a := h.running[ref("j", "A", 0)]
	h.c.TaskFinished(ref("j", "A", 0), a.Attempt+7) // bogus attempt
	h.c.TaskFailed(ref("j", "A", 0), a.Attempt-1, FailCrash)
	h.c.TaskFinished(ref("j", "zzz", 0), 1)  // unknown stage
	h.c.TaskFinished(ref("nope", "A", 0), 1) // unknown job
	h.drain()
	if h.completed("j") || h.jobFailed("j") {
		t.Fatal("stale events changed job state")
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
	// Finishing an already-done task is ignored.
	h.c.TaskFinished(ref("j", "A", 0), a.Attempt)
	h.drain()
}

func TestSubmitValidation(t *testing.T) {
	h := newHarness(t, 1, 1, DefaultOptions())
	if err := h.c.SubmitJob(nil); err == nil {
		t.Error("nil job accepted")
	}
	h.submit(pipelineJob("dup", 1, 1))
	if err := h.c.SubmitJob(pipelineJob("dup", 1, 1)); err == nil {
		t.Error("duplicate job accepted")
	}
	if err := h.c.SubmitJob(dag.NewJob("empty")); err == nil {
		t.Error("empty job accepted")
	}
}

func TestEdgeModeSelection(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(pipelineJob("j", 2, 2)) // edge size 4 -> Direct
	if got := h.c.EdgeMode("j", "A", "B"); got != shuffle.Direct {
		t.Errorf("mode = %v, want Direct", got)
	}
	if got := h.c.EdgeMode("nope", "A", "B"); got != shuffle.Direct {
		t.Errorf("unknown job mode = %v", got)
	}

	opts := DefaultOptions()
	opts.Shuffle = DiskShuffle()
	h2 := newHarness(t, 4, 4, opts)
	h2.submit(pipelineJob("j", 2, 2))
	if got := h2.c.EdgeMode("j", "A", "B"); got != shuffle.Disk {
		t.Errorf("disk policy mode = %v", got)
	}

	big := pipelineJob("big", 400, 400) // 160k edges -> Local under adaptive
	h3 := newHarness(t, 100, 60, DefaultOptions())
	h3.submit(big)
	if got := h3.c.EdgeMode("big", "A", "B"); got != shuffle.Local {
		t.Errorf("adaptive large mode = %v, want Local", got)
	}
}

func TestPerStagePartitionSchedulesStagewise(t *testing.T) {
	opts := DefaultOptions()
	opts.Partition = PerStagePartition
	h := newHarness(t, 4, 4, opts)
	h.submit(pipelineJob("j", 2, 2)) // pipeline edge, but per-stage gating
	if len(h.running) != 2 {
		t.Fatalf("per-stage: running = %d, want 2 (A only)", len(h.running))
	}
	h.finish(ref("j", "A", 0))
	h.finish(ref("j", "A", 1))
	if len(h.running) != 2 {
		t.Fatalf("B not launched after A: %v", h.running)
	}
	h.finishAll()
	if !h.completed("j") {
		t.Fatal("job not completed")
	}
}

func TestGraphletAccessors(t *testing.T) {
	h := newHarness(t, 4, 4, DefaultOptions())
	h.submit(barrierJob("j", 1, 1))
	gs := h.c.Graphlets("j")
	if len(gs) != 2 {
		t.Fatalf("graphlets = %d", len(gs))
	}
	if h.c.GraphletOf("j", "A") != 0 || h.c.GraphletOf("j", "B") != 1 {
		t.Error("GraphletOf wrong")
	}
	if h.c.GraphletOf("j", "zzz") != -1 || h.c.GraphletOf("nope", "A") != -1 {
		t.Error("GraphletOf should be -1 for unknowns")
	}
	if h.c.Graphlets("nope") != nil {
		t.Error("Graphlets of unknown job")
	}
	if _, _, ok := h.c.RunningTask(ref("j", "A", 0)); !ok {
		t.Error("RunningTask should find A[0]")
	}
	if _, _, ok := h.c.RunningTask(ref("j", "B", 0)); ok {
		t.Error("RunningTask found un-started B[0]")
	}
}
