// Package core implements the Swift Admin of Section II: job admission,
// shuffle-mode-aware partitioning, graphlet gang scheduling against the
// resource pool (data locality + machine load), executor management,
// machine health monitoring, and the fine-grained failure recovery of
// Section IV. The controller is a pure event→action state machine: it owns
// no clock, goroutines or I/O. Drivers (the discrete-event simulator in
// package simrun and the real execution engine in package engine) feed it
// events — job submissions, task completions, failures, machine health
// changes — and interpret the actions it emits.
package core

import (
	"fmt"

	"swift/internal/cluster"
	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/sched"
	"swift/internal/shuffle"
)

type taskStatus int8

const (
	tPending taskStatus = iota
	tRunning
	tDone
)

type gStatus int8

const (
	gWaiting gStatus = iota // gating stages not yet complete
	gQueued                 // registered with the resource scheduler
	gRunning                // at least one task launched, none pending
	gDone
)

// stageState tracks per-task execution state of one stage.
type stageState struct {
	graphlet int
	status   []taskStatus
	executor []cluster.ExecutorID // executor of current/last attempt (-1 unknown)
	attempt  []int
	retries  []int
	started  []bool        // ever launched (non-idempotent cascade scope)
	reason   []StartReason // reason for the next launch of each task
	// lost marks a tDone task whose buffered output is gone but was not
	// needed at loss time ("no step will be taken"). If a consumer later
	// re-enters the pending state, the producer must re-run first —
	// markPending revives lost inputs transitively.
	lost []bool
	// homes tracks, per done task, the machines holding copies of its
	// buffered output in serving order (head = serving copy). Allocated
	// lazily, only when Options.ShuffleReplicas > 1 and the stage has
	// consumers; nil rows mean "unreplicated" and recover the v1 way.
	homes [][]cluster.MachineID
	done  int
}

func (s *stageState) complete() bool { return s.done == len(s.status) }

// graphletRun tracks scheduling state of one graphlet.
type graphletRun struct {
	status  gStatus
	pending []TaskRef // tasks awaiting an executor, topologically ordered
	running int
	gating  []string // external producer stages that must finish first
	// disordered is set when recovery re-inserts a task, so the pending
	// queue may no longer be in topological order and launch selection
	// must scan for the most-upstream entry instead of popping the front.
	disordered bool
}

type edgeKey struct{ from, to string }

// monitor is the per-job state the paper calls the Job Monitor.
type monitor struct {
	job       *dag.Job
	graphlets []*graphlet.Graphlet
	owner     map[string]int // stage -> graphlet index
	gruns     []*graphletRun
	stages    map[string]*stageState
	modes     map[edgeKey]shuffle.Mode
	topo      []string       // stage names in topological order
	stageIdx  map[string]int // stage -> topological index
	done      bool
	failed    bool
	restarts  int
	tenant    string        // normalized tenant label (TenantName)
	tc        *TenantCounts // the tenant's live aggregate counters
	seq       int           // admission sequence number (policy FIFO tiebreak)
}

// Controller is the Swift Admin state machine.
type Controller struct {
	opts    Options
	cl      *cluster.Cluster
	jobs    map[string]*monitor
	order   []string  // submission order of live jobs
	queue   []reqItem // graphlet resource requests (ReqItems), FIFO
	actions []Action
	// deferSchedule suppresses the resource loop while a batch of
	// related failures is being processed (machine failure), so that
	// recovery decisions see the full damage before relaunches begin.
	deferSchedule bool
	// disorderedRuns counts graphlet runs whose pending queue holds
	// recovery-re-inserted tasks. Zero means no recovery is in flight
	// anywhere, so the scheduler's deadlock check — an O(queue) scan — is
	// skipped entirely on the hot fault-free path.
	disorderedRuns int
	// Incrementally maintained aggregates behind Snapshot(); every task
	// state transition adjusts them in O(1) (see snapshot.go). Invariance
	// against a full recount is asserted by CheckInvariants.
	snapVersion uint64
	snapLive    int
	snapPending int
	snapRunning int
	snapDone    int
	// policy is the resolved scheduling policy (never nil); fifo caches
	// whether it is the default sched.FIFO, which serveQueue and schedule
	// use to skip policy-view construction entirely on the legacy path.
	policy sched.Policy
	fifo   bool
	// tenants holds per-tenant aggregate counters, maintained O(delta)
	// alongside the snapshot counters (see tenant.go); nextSeq numbers
	// admissions for the policy's FIFO tiebreak.
	tenants  map[string]*TenantCounts
	nextSeq  int
	reclaims int // gangs reclaimed by policy preemption, for reports
	// Shuffle-service recovery counters, for reports: replicaHits counts
	// lost serving copies recovered by promoting a surviving replica (no
	// recompute), recomputes counts lost outputs that re-ran the producer
	// ("rerun" dispositions, replicated or not).
	replicaHits int
	recomputes  int
}

type reqItem struct {
	job string
	g   int
}

// NewController builds a controller over the given cluster.
func NewController(cl *cluster.Cluster, opts Options) *Controller {
	if opts.Partition == nil {
		opts.Partition = GraphletPartition
	}
	if opts.Shuffle == nil {
		opts.Shuffle = AdaptiveShuffle(shuffle.DefaultThresholds())
	}
	if opts.MaxTaskRetries <= 0 {
		opts.MaxTaskRetries = 3
	}
	if opts.UnhealthyThreshold <= 0 {
		opts.UnhealthyThreshold = 8
	}
	if opts.Policy == nil {
		opts.Policy = sched.FIFO{}
	}
	_, fifo := opts.Policy.(sched.FIFO)
	return &Controller{opts: opts, cl: cl, jobs: make(map[string]*monitor),
		policy: opts.Policy, fifo: fifo, tenants: make(map[string]*TenantCounts)}
}

// Cluster returns the managed cluster.
func (c *Controller) Cluster() *cluster.Cluster { return c.cl }

// Drain returns and clears the accumulated actions.
func (c *Controller) Drain() []Action {
	a := c.actions
	c.actions = nil
	return a
}

//lint:hotpath
func (c *Controller) emit(a Action) {
	c.actions = append(c.actions, a)
	c.observe(a)
}

// SubmitJob admits a job: validates it, partitions it with the configured
// policy, selects shuffle modes per edge, and registers resource requests
// for the graphlets whose inputs are already available.
func (c *Controller) SubmitJob(job *dag.Job) error {
	if job == nil {
		return fmt.Errorf("core: nil job")
	}
	if _, dup := c.jobs[job.ID]; dup {
		return fmt.Errorf("core: duplicate job id %q", job.ID)
	}
	if err := job.Validate(); err != nil {
		return err
	}
	gs, err := c.opts.Partition(job)
	if err != nil {
		return err
	}
	m := &monitor{
		job:       job,
		graphlets: gs,
		owner:     make(map[string]int),
		stages:    make(map[string]*stageState),
		modes:     make(map[edgeKey]shuffle.Mode),
		tenant:    TenantName(job),
		seq:       c.nextSeq,
	}
	c.nextSeq++
	m.tc = c.tenantCounts(m.tenant)
	for _, g := range gs {
		for _, s := range g.Stages {
			m.owner[s] = g.Index
		}
	}
	c.opts.Obs.JobSubmitted(job.ID, len(job.Stages()), job.NumTasks(), len(gs))
	// The adaptive selector samples the load once per admission, so every
	// edge of one job sees the same observation (and the probe count stays
	// a pure function of the job arrival sequence).
	var load shuffle.Load
	if al := c.opts.AdaptiveLoad; al != nil && al.Probe != nil {
		load = al.Probe()
	}
	for _, e := range job.Edges() {
		crossing := m.owner[e.From] != m.owner[e.To]
		mode := c.opts.Shuffle(job.ShuffleEdgeSize(e), e.Bytes, crossing)
		c.opts.Obs.ShuffleModeSelected(job.ID, e.From, e.To, mode.String(), job.ShuffleEdgeSize(e), e.Bytes)
		if al := c.opts.AdaptiveLoad; al != nil {
			if adapted, reason, ok := al.Selector.Adapt(mode, load); ok {
				c.opts.Obs.ShuffleAdapted(job.ID, e.From, e.To, mode.String(), adapted.String(), reason)
				mode = adapted
			}
		}
		m.modes[edgeKey{e.From, e.To}] = mode
	}
	for _, s := range job.Stages() {
		st := &stageState{
			graphlet: m.owner[s.Name],
			status:   make([]taskStatus, s.Tasks),
			executor: make([]cluster.ExecutorID, s.Tasks),
			attempt:  make([]int, s.Tasks),
			retries:  make([]int, s.Tasks),
			started:  make([]bool, s.Tasks),
			reason:   make([]StartReason, s.Tasks),
			lost:     make([]bool, s.Tasks),
		}
		for i := range st.executor {
			st.executor[i] = -1
		}
		m.stages[s.Name] = st
	}
	m.gruns = c.buildGraphletRuns(m)
	c.jobs[job.ID] = m
	c.order = append(c.order, job.ID)
	c.snapAdmit(m)
	c.enqueueReady(m)
	c.schedule()
	return nil
}

// buildGraphletRuns derives the scheduling state for each graphlet:
// pending-task order (topological within the graphlet) and gating stages
// (producers of edges entering from outside — the "all its input data are
// ready" submission rule).
func (c *Controller) buildGraphletRuns(m *monitor) []*graphletRun {
	topo, _ := m.job.TopoOrder() // validated at submit
	m.topo = topo
	if m.stageIdx == nil {
		m.stageIdx = make(map[string]int, len(topo))
		for i, s := range topo {
			m.stageIdx[s] = i
		}
	}
	runs := make([]*graphletRun, len(m.graphlets))
	for _, g := range m.graphlets {
		run := &graphletRun{status: gWaiting}
		inG := make(map[string]bool, len(g.Stages))
		for _, s := range g.Stages {
			inG[s] = true
		}
		for _, s := range topo {
			if !inG[s] {
				continue
			}
			for i := 0; i < m.job.Stage(s).Tasks; i++ {
				run.pending = append(run.pending, TaskRef{Job: m.job.ID, Stage: s, Index: i})
			}
			for _, e := range m.job.In(s) {
				if !inG[e.From] {
					run.gating = append(run.gating, e.From)
				}
			}
		}
		runs[g.Index] = run
	}
	return runs
}

// enqueueReady moves graphlets whose gating stages are all complete from
// gWaiting to gQueued.
func (c *Controller) enqueueReady(m *monitor) {
	if m.failed || m.done {
		return
	}
	for i, run := range m.gruns {
		if run.status != gWaiting {
			continue
		}
		ready := true
		for _, s := range run.gating {
			if !m.stages[s].complete() {
				ready = false
				break
			}
		}
		if ready {
			run.status = gQueued
			c.queue = append(c.queue, reqItem{job: m.job.ID, g: i})
			m.tc.Queued++
			c.opts.Obs.GraphletQueued(m.job.ID, i, len(run.pending))
		}
	}
}

// requeue re-registers a graphlet that needs more executors (recovery or a
// pool shrunk by machine failure).
func (c *Controller) requeue(m *monitor, g int) {
	run := m.gruns[g]
	if run.status == gQueued {
		for _, it := range c.queue {
			if it.job == m.job.ID && it.g == g {
				return
			}
		}
	}
	run.status = gQueued
	c.queue = append(c.queue, reqItem{job: m.job.ID, g: g})
	m.tc.Queued++
	c.opts.Obs.GraphletQueued(m.job.ID, g, len(run.pending))
}

// maxPreemptRounds bounds policy preemptions per scheduling round; each
// reclaim frees executors and re-serves the queue, and the next event's
// schedule() continues if shares are still out of balance.
const maxPreemptRounds = 4

// schedule is the ResourceScheduleLoop: serve the request queue, and if
// the pool ran dry with requests still waiting, check for the one stall
// serving alone cannot fix — every executor held by pipeline consumers
// idle-waiting on producer tasks that recovery pushed back to pending.
// Breaking that deadlock frees an executor, so the queue is served again.
// Under a non-FIFO policy a dry pool with starved queued work may also
// warrant preemption: the policy nominates whole-graphlet victims to
// reclaim, reusing the deadlock breaker's per-task machinery.
//
//lint:hotpath
func (c *Controller) schedule() {
	if c.deferSchedule {
		return
	}
	preempts := 0
	for {
		freeBefore := c.cl.FreeExecutors()
		c.serveQueue()
		if len(c.queue) == 0 {
			return
		}
		if free := c.cl.FreeExecutors(); free > 0 {
			// Pool still wet with work queued. Under FIFO every entry was
			// walked, so the remainder is gated — done. Under a policy the
			// round is a budgeted plan: after a progressing round, re-plan
			// (a launch may have consumed the last of a tenant's quota with
			// work still queued behind it); once a round launches nothing,
			// the clamped remainder may be wedged behind its own quota —
			// every quota slot held by consumers parked on the very
			// producers the clamp keeps queued, a state no future event
			// will fix. Preempting one parked consumer frees a unit of
			// quota for the starved producer.
			if c.fifo {
				return
			}
			if free < freeBefore {
				continue
			}
			if c.disorderedRuns != 0 && c.breakDeadlock() {
				continue
			}
			return
		}
		// A dry pool with waiting requests is the normal saturated state;
		// it can only be a deadlock when recovery has re-pended work
		// somewhere (a disordered run), so the scan is gated on that.
		if c.disorderedRuns != 0 && c.breakDeadlock() {
			continue
		}
		if c.fifo || preempts >= maxPreemptRounds || !c.preemptRound() {
			return
		}
		preempts++
	}
}

// serveQueue serves the request queue for one round: the FIFO fast path
// walks it in arrival order; any other policy plans the round first (see
// servePolicy in policy.go).
func (c *Controller) serveQueue() {
	if len(c.queue) == 0 || c.cl.FreeExecutors() == 0 {
		return
	}
	if c.fifo {
		c.serveFIFO()
		return
	}
	c.servePolicy()
}

// serveFIFO walks the request queue in FIFO order, allocates executors
// (locality + load policy in cluster.Allocate), and launches pending
// tasks. Items that cannot make progress stay queued; later items may
// still be served (backfill), which is what lets small jobs flow around a
// large one.
func (c *Controller) serveFIFO() {
	// In-place queue compaction: entries that were fully served (or whose
	// job died) are dropped; entries still waiting stay in FIFO order. In
	// the common saturated case one freed executor is absorbed by the
	// head entry and the loop exits after one iteration with the queue
	// untouched — this must stay O(1), it runs on every task completion.
	n := len(c.queue)
	w, i := 0, 0
	for ; i < n; i++ {
		// Once the pool is dry nothing further can be served this
		// round. (StrictGang items may skip while leaving executors
		// free for backfill, so only stop when the pool is empty.)
		if c.cl.FreeExecutors() == 0 {
			break
		}
		item := c.queue[i]
		if c.serveItem(item, 0) {
			if w != i {
				c.queue[w] = item
			}
			w++
			if c.opts.StrictFIFO {
				i++
				break // head-of-line blocking: nothing behind is served
			}
		} else {
			c.queueDropped(item)
		}
	}
	if w == i {
		return // nothing dropped; unprocessed tail already in place
	}
	for ; i < n; i++ {
		c.queue[w] = c.queue[i]
		w++
	}
	c.queue = c.queue[:w]
}

// serveItem tries to allocate executors for one queued graphlet request
// and reports whether the item should remain queued. limit > 0 caps how
// many tasks may launch this round (a policy grant's tenant budget); it
// applies after the StrictGang full-fit check, which keeps gang semantics
// a property of the graphlet, not of the policy.
func (c *Controller) serveItem(item reqItem, limit int) (keep bool) {
	m := c.jobs[item.job]
	if m == nil || m.failed || m.done {
		return false
	}
	run := m.gruns[item.g]
	if run.status != gQueued || len(run.pending) == 0 {
		if run.status == gQueued {
			run.status = gRunning
		}
		return false
	}
	want := len(run.pending)
	if c.opts.StrictGang && c.cl.FreeExecutors() < want {
		// JetScope semantics: nothing launches until the whole gang
		// fits.
		return true
	}
	if c.opts.MaxGraphletExecutors > 0 && want > c.opts.MaxGraphletExecutors {
		want = c.opts.MaxGraphletExecutors
	}
	if limit > 0 && want > limit {
		want = limit
	}
	execs := c.cl.Allocate(want, nil)
	if len(execs) == 0 {
		return true
	}
	for i, e := range execs {
		if len(run.pending) == 0 {
			// More executors than pending tasks (pending shrank since
			// `want` was computed): return the leftovers.
			c.cl.Release(execs[i:])
			break
		}
		c.launch(m, run, c.takePending(m, run), e)
	}
	if len(run.pending) > 0 {
		return true
	}
	run.status = gRunning
	return false
}

// takePending removes and returns the next pending task to launch,
// upstream stages first. Freshly built pending queues are topologically
// ordered, so the common path pops the front in O(1); once recovery
// re-inserts tasks out of order, the queue is scanned for the entry with
// the smallest topological index, so a re-pended producer always launches
// before more of its consumers — launching consumers first would park
// them on data the producer cannot regenerate without an executor.
func (c *Controller) takePending(m *monitor, run *graphletRun) TaskRef {
	best := 0
	if run.disordered {
		for i := 1; i < len(run.pending); i++ {
			a, b := run.pending[i], run.pending[best]
			ia, ib := m.stageIdx[a.Stage], m.stageIdx[b.Stage]
			if ia < ib || (ia == ib && a.Index < b.Index) {
				best = i
			}
		}
	}
	ref := run.pending[best]
	run.pending = append(run.pending[:best], run.pending[best+1:]...)
	if run.disordered && len(run.pending) == 0 {
		run.disordered = false
		c.disorderedRuns--
	}
	return ref
}

// breakDeadlock resolves the one stall the resource loop cannot serve its
// way out of: recovery re-pends producer tasks (lost output, machine
// crash) while downstream consumers occupy every executor waiting for
// exactly that data — the consumers never finish, so no executor is ever
// freed for the producers. The stall can span graphlets: a gating stage
// that regresses after its consumer graphlet launched leaves that
// graphlet's tasks parked on data nobody can regenerate. For the first
// starved queue item, the most-downstream running task of the same job
// below a pending stage is preempted, and the starved item moves to the
// queue front so the freed executor goes to the blocked producer rather
// than relaunching a consumer that would only park again. The preemption
// is not the victim's fault, so its retry budget is untouched; a
// non-idempotent victim cascades exactly like a failed one. Returns
// whether a task was preempted (i.e. an executor may have been freed).
func (c *Controller) breakDeadlock() bool {
	for qi, item := range c.queue {
		m := c.jobs[item.job]
		if m == nil || m.failed || m.done {
			continue
		}
		run := m.gruns[item.g]
		if !run.disordered || run.status != gQueued || len(run.pending) == 0 {
			// Every deadlock starves a recovery-re-pended producer, and
			// re-insertion marks its run disordered — ordered runs cannot
			// be the blocked side of a deadlock.
			continue
		}
		// Stages of this job strictly downstream of any stage with
		// pending work in this graphlet.
		below := make(map[string]bool)
		var mark func(stage string)
		mark = func(stage string) {
			for _, e := range m.job.Out(stage) {
				if !below[e.To] {
					below[e.To] = true
					mark(e.To)
				}
			}
		}
		seen := make(map[string]bool)
		for _, ref := range run.pending {
			if !seen[ref.Stage] {
				seen[ref.Stage] = true
				mark(ref.Stage)
			}
		}
		// Most-downstream running victim; among equals prefer one whose
		// executor will actually repool (healthy machine).
		victim := TaskRef{Index: -1}
		haveHealthy := false
		for i := len(m.topo) - 1; i >= 0 && !haveHealthy; i-- {
			s := m.topo[i]
			if !below[s] {
				continue
			}
			st := m.stages[s]
			for idx := range st.status {
				if st.status[idx] != tRunning {
					continue
				}
				ref := TaskRef{Job: m.job.ID, Stage: s, Index: idx}
				if c.cl.Machine(c.cl.MachineOf(st.executor[idx])).Health == cluster.Healthy {
					victim = ref
					haveHealthy = true
					break
				}
				if victim.Index < 0 {
					victim = ref
				}
			}
		}
		if victim.Index < 0 {
			continue
		}
		st := m.stages[victim.Stage]
		c.emit(ActAbortTask{Task: victim, Executor: st.executor[victim.Index], Attempt: st.attempt[victim.Index]})
		c.releaseRunning(m, victim)
		c.markPending(m, victim, StartRetry)
		if !m.job.Stage(victim.Stage).Idempotent {
			c.cascade(m, victim.Stage, st.graphlet, map[string]bool{victim.Stage: true})
		}
		c.requeue(m, st.graphlet)
		// Serve the starved producer first: each preemption then launches
		// a task strictly upstream of its victim, which bounds the number
		// of preemptions one scheduling round can perform.
		copy(c.queue[1:qi+1], c.queue[:qi])
		c.queue[0] = item
		return true
	}
	return false
}

// launch starts one task attempt on an executor and emits the action. The
// start reason was recorded in the stage state by whoever marked the task
// pending (fresh submission, retry or cascade).
func (c *Controller) launch(m *monitor, run *graphletRun, ref TaskRef, e cluster.ExecutorID) {
	st := m.stages[ref.Stage]
	reason := st.reason[ref.Index]
	st.reason[ref.Index] = StartFresh
	st.status[ref.Index] = tRunning
	st.executor[ref.Index] = e
	st.attempt[ref.Index]++
	st.started[ref.Index] = true
	run.running++
	c.snapDelta(m, -1, 1, 0)
	c.emit(ActStartTask{
		Task:     ref,
		Executor: e,
		Graphlet: st.graphlet,
		Attempt:  st.attempt[ref.Index],
		Reason:   reason,
	})
	if reason == StartRetry && m.job.Stage(ref.Stage).Idempotent {
		// Intra-graphlet idempotent recovery: surviving pipeline
		// producers in the same graphlet re-send buffered output.
		for _, pe := range m.job.In(ref.Stage) {
			if m.owner[pe.From] == st.graphlet {
				c.emit(ActResend{To: ref, FromStage: pe.From})
			}
		}
	}
}

// TaskFinished records a successful task completion. Stale attempts (from
// an aborted execution racing its abort) are ignored.
func (c *Controller) TaskFinished(ref TaskRef, attempt int) {
	m := c.jobs[ref.Job]
	if m == nil || m.failed || m.done {
		return
	}
	st, ok := m.stages[ref.Stage]
	if !ok || ref.Index < 0 || ref.Index >= len(st.status) {
		return
	}
	if st.attempt[ref.Index] != attempt || st.status[ref.Index] != tRunning {
		return
	}
	st.status[ref.Index] = tDone
	st.done++
	c.snapDelta(m, 0, -1, 1)
	run := m.gruns[st.graphlet]
	run.running--
	e := st.executor[ref.Index]
	if c.opts.ShuffleReplicas > 1 && len(m.job.Out(ref.Stage)) > 0 {
		// Replicate the buffered output before the executor is reused: the
		// copy reads from the producer's Cache Worker, not the executor.
		c.replicateOutput(m, st, ref, e)
	}

	// Reuse the freed executor for the next pending task of the same
	// graphlet; otherwise hand it back to the resource pool. Reuse is only
	// legal while the executor's machine still accepts work: launching on
	// a draining (read-only) or failed machine would break the health
	// monitor's contract (Section IV-A), so those slots are released
	// instead and the graphlet asks the scheduler for replacements.
	if len(run.pending) > 0 && c.cl.Machine(c.cl.MachineOf(e)).Health == cluster.Healthy {
		c.launch(m, run, c.takePending(m, run), e)
	} else {
		c.cl.Release([]cluster.ExecutorID{e})
		if len(run.pending) > 0 {
			c.requeue(m, st.graphlet)
		} else if run.running == 0 && run.status != gDone {
			run.status = gDone
			c.opts.Obs.GraphletDone(m.job.ID, st.graphlet)
		}
	}

	if st.complete() {
		c.enqueueReady(m)
		c.checkJobDone(m)
	}
	c.schedule()
}

func (c *Controller) checkJobDone(m *monitor) {
	for _, st := range m.stages {
		if !st.complete() {
			return
		}
	}
	m.done = true
	c.snapClose(m)
	c.emit(ActJobCompleted{Job: m.job.ID})
}

// JobDone reports whether the job has completed successfully.
func (c *Controller) JobDone(job string) bool {
	m := c.jobs[job]
	return m != nil && m.done
}

// JobFailed reports whether the job was abandoned.
func (c *Controller) JobFailed(job string) bool {
	m := c.jobs[job]
	return m != nil && m.failed
}

// StageComplete reports whether all tasks of a stage have finished.
func (c *Controller) StageComplete(job, stage string) bool {
	m := c.jobs[job]
	if m == nil {
		return false
	}
	st, ok := m.stages[stage]
	return ok && st.complete()
}

// EdgeMode returns the shuffle mode selected for an edge at admission.
func (c *Controller) EdgeMode(job, from, to string) shuffle.Mode {
	m := c.jobs[job]
	if m == nil {
		return shuffle.Direct
	}
	return m.modes[edgeKey{from, to}]
}

// Graphlets returns the partition computed for a job at admission.
func (c *Controller) Graphlets(job string) []*graphlet.Graphlet {
	m := c.jobs[job]
	if m == nil {
		return nil
	}
	return m.graphlets
}

// GraphletOf returns the graphlet index owning a stage (-1 if unknown).
func (c *Controller) GraphletOf(job, stage string) int {
	m := c.jobs[job]
	if m == nil {
		return -1
	}
	g, ok := m.owner[stage]
	if !ok {
		return -1
	}
	return g
}

// RunningTask returns the executor and attempt of a task if it is
// currently running.
func (c *Controller) RunningTask(ref TaskRef) (cluster.ExecutorID, int, bool) {
	m := c.jobs[ref.Job]
	if m == nil {
		return 0, 0, false
	}
	st, ok := m.stages[ref.Stage]
	if !ok || ref.Index < 0 || ref.Index >= len(st.status) || st.status[ref.Index] != tRunning {
		return 0, 0, false
	}
	return st.executor[ref.Index], st.attempt[ref.Index], true
}

// replicateOutput records the machine homes of a finished task's buffered
// output and instructs the driver to copy it: the primary home is the
// executor's machine (where the Cache Worker already buffered the data),
// the R−1 extras the next healthy machines on the machine-ID ring — a
// deterministic placement every component can recompute.
func (c *Controller) replicateOutput(m *monitor, st *stageState, ref TaskRef, e cluster.ExecutorID) {
	n := c.cl.NumMachines()
	primary := c.cl.MachineOf(e)
	homes := make([]cluster.MachineID, 1, c.opts.ShuffleReplicas)
	homes[0] = primary
	for i := 1; i < n && len(homes) < c.opts.ShuffleReplicas; i++ {
		id := cluster.MachineID((int(primary) + i) % n)
		if c.cl.Machine(id).Health == cluster.Healthy {
			homes = append(homes, id)
		}
	}
	if st.homes == nil {
		st.homes = make([][]cluster.MachineID, len(st.status))
	}
	st.homes[ref.Index] = homes
	c.emit(ActReplicate{Task: ref, Attempt: st.attempt[ref.Index], Machines: homes})
}

// ReplicaRecoveries returns how many lost serving copies recovery resolved
// by promoting a surviving replica instead of recomputing the producer.
func (c *Controller) ReplicaRecoveries() int { return c.replicaHits }

// OutputRecomputes returns how many lost buffered outputs required
// re-running the producer task (the "rerun" disposition), whether or not
// replication was enabled.
func (c *Controller) OutputRecomputes() int { return c.recomputes }

// Restarts returns how many times the JobRestart policy reset the job.
func (c *Controller) Restarts(job string) int {
	m := c.jobs[job]
	if m == nil {
		return 0
	}
	return m.restarts
}
