package core

import (
	"sort"

	"swift/internal/dag"
)

// DefaultTenant is the tenant label assigned to jobs submitted without
// one, so every job belongs to exactly one tenant and single-tenant
// deployments never see an empty name in status output.
const DefaultTenant = "default"

// TenantName normalizes a job's tenant label.
func TenantName(job *dag.Job) string {
	if job == nil || job.Tenant == "" {
		return DefaultTenant
	}
	return job.Tenant
}

// TenantCounts is one tenant's live aggregate state, maintained O(delta)
// alongside the global snapshot counters and cross-checked against a full
// recount by CheckInvariants.
type TenantCounts struct {
	Tenant  string
	Jobs    int // live jobs (admitted, not yet completed or failed)
	Pending int // pending tasks of live jobs
	Running int // running tasks of live jobs
	Done    int // completed tasks of live jobs
	Queued  int // graphlet resource requests in the scheduler queue
}

// tenantCounts returns (creating on first use) the counter record for a
// tenant. Records persist after a tenant's last job retires — the counts
// drop back to zero but the tenant stays listed in status output.
func (c *Controller) tenantCounts(name string) *TenantCounts {
	tc := c.tenants[name]
	if tc == nil {
		tc = &TenantCounts{Tenant: name}
		c.tenants[name] = tc
	}
	return tc
}

// queueDropped maintains the per-tenant queued-request counter when an
// entry leaves the scheduler queue outside the bulk filters in
// failJob/restartJob (which adjust the counter themselves).
func (c *Controller) queueDropped(it reqItem) {
	if m := c.jobs[it.job]; m != nil {
		m.tc.Queued--
	}
}

// TenantSnapshots returns every tenant's aggregate counters, sorted by
// tenant name. Unlike Snapshot().Tenants it is populated under any
// policy, including FIFO.
func (c *Controller) TenantSnapshots() []TenantCounts {
	if len(c.tenants) == 0 {
		return nil
	}
	names := make([]string, 0, len(c.tenants))
	//lint:allow hotpath collect-then-sort over the tenant registry is O(#tenants) once per scheduling round, not per task
	for name := range c.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]TenantCounts, 0, len(names))
	for _, n := range names {
		out = append(out, *c.tenants[n])
	}
	return out
}

// TenantInFlight returns one tenant's pending+running task count in O(1)
// — the per-tenant admission budget consumer flow.Controller reads on
// every offer.
func (c *Controller) TenantInFlight(name string) int {
	tc := c.tenants[name]
	if tc == nil {
		return 0
	}
	return tc.Pending + tc.Running
}

// ReclaimedGangs returns how many whole graphlets policy preemption has
// reclaimed since the controller started.
func (c *Controller) ReclaimedGangs() int { return c.reclaims }

// PolicyName identifies the active scheduling policy.
func (c *Controller) PolicyName() string { return c.policy.Name() }
