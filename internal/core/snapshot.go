package core

// StateSnapshot is the O(1) aggregate view of the controller that admission
// control reads on every flow decision. The counters are maintained
// incrementally at each task state transition (O(delta) per event, never a
// full sweep), so a long-running service can consult them on every arriving
// submission without walking the job table. Version increments on every
// mutation, letting callers detect staleness across their own decisions.
type StateSnapshot struct {
	Version        uint64
	LiveJobs       int // admitted, not yet completed or failed
	PendingTasks   int // tasks of live jobs awaiting an executor
	RunningTasks   int // tasks of live jobs currently placed
	DoneTasks      int // completed tasks of live jobs
	SchedQueueLen  int // graphlet resource requests waiting in the scheduler
	FreeExecutors  int
	TotalExecutors int
	// Tenants is the per-tenant breakdown, sorted by tenant name. It is
	// populated only under a non-FIFO policy: the FIFO fast path keeps
	// Snapshot() allocation-free for the flow controller's hot admission
	// path. TenantSnapshots() returns the breakdown unconditionally.
	Tenants []TenantCounts
}

// InFlightTasks is the admission-control budget consumer: work the cluster
// has accepted but not finished.
func (s StateSnapshot) InFlightTasks() int { return s.PendingTasks + s.RunningTasks }

// Snapshot returns the current aggregate state in O(1) (O(tenants) under a
// non-FIFO policy, for the per-tenant breakdown).
func (c *Controller) Snapshot() StateSnapshot {
	s := StateSnapshot{
		Version:        c.snapVersion,
		LiveJobs:       c.snapLive,
		PendingTasks:   c.snapPending,
		RunningTasks:   c.snapRunning,
		DoneTasks:      c.snapDone,
		SchedQueueLen:  len(c.queue),
		FreeExecutors:  c.cl.FreeExecutors(),
		TotalExecutors: c.cl.NumExecutors(),
	}
	if !c.fifo {
		s.Tenants = c.TenantSnapshots()
	}
	return s
}

// snapDelta applies one incremental task-count adjustment for a task of
// m's job, to both the global and the per-tenant counters.
func (c *Controller) snapDelta(m *monitor, dPending, dRunning, dDone int) {
	c.snapVersion++
	c.snapPending += dPending
	c.snapRunning += dRunning
	c.snapDone += dDone
	m.tc.Pending += dPending
	m.tc.Running += dRunning
	m.tc.Done += dDone
}

// snapAdmit accounts a freshly admitted job: all tasks start pending.
func (c *Controller) snapAdmit(m *monitor) {
	tasks := m.job.NumTasks()
	c.snapVersion++
	c.snapLive++
	c.snapPending += tasks
	m.tc.Jobs++
	m.tc.Pending += tasks
}

// snapClose removes a job leaving the live set (completed or failed) from
// the aggregates. O(tasks of the job), paid once per job lifetime.
func (c *Controller) snapClose(m *monitor) {
	p, r, d := 0, 0, 0
	for _, st := range m.stages {
		for i := range st.status {
			switch st.status[i] {
			case tPending:
				p++
			case tRunning:
				r++
			case tDone:
				d++
			}
		}
	}
	c.snapVersion++
	c.snapLive--
	c.snapPending -= p
	c.snapRunning -= r
	c.snapDone -= d
	m.tc.Jobs--
	m.tc.Pending -= p
	m.tc.Running -= r
	m.tc.Done -= d
}

// snapMarkPending accounts a task of m's job transitioning to tPending
// from its current status. Must be called BEFORE the status is
// overwritten.
func (c *Controller) snapMarkPending(m *monitor, prev taskStatus) {
	switch prev {
	case tDone:
		c.snapDelta(m, 1, 0, -1)
	case tRunning:
		// Callers release the executor (→ tPending) before re-marking, so
		// this arm is defensive only.
		c.snapDelta(m, 1, -1, 0)
	case tPending:
		c.snapVersion++
	}
}
