package core

import (
	"fmt"

	"swift/internal/cluster"
	"swift/internal/dag"
)

// Shadow-controller support (Fig. 2: "the shadow controller mechanism is
// enabled to avoid a single point of failure"). The controller is a
// deterministic state machine, so replication is event sourcing: every
// input event is appended to a log, and replaying the log into a fresh
// controller reproduces the primary's exact state — including in-flight
// task attempts — at which point the shadow can take over and its future
// actions match what the failed primary would have emitted.
//
// ReplicatedController wraps a Controller with such a log. Snapshot-free
// event sourcing keeps the mechanism simple; production deployments would
// checkpoint the log periodically, which Compact approximates by dropping
// events of completed jobs.

// EventKind tags a logged controller input.
type EventKind int

// Logged event kinds.
const (
	EvSubmitJob EventKind = iota
	EvTaskFinished
	EvTaskFailed
	EvTaskOutputLost
	EvMachineFailed
	EvMachineUnhealthy
	EvExecutorRestarted
)

// Event is one logged controller input. Job carries the submitted DAG for
// EvSubmitJob (the log owns it; callers must not mutate it afterwards).
type Event struct {
	Kind     EventKind
	Job      *dag.Job
	Task     TaskRef
	Attempt  int
	Failure  FailureKind
	Machine  cluster.MachineID
	Executor cluster.ExecutorID
}

// ReplicatedController is a Controller whose inputs are logged for shadow
// replay.
type ReplicatedController struct {
	*Controller
	log []Event
}

// NewReplicatedController builds a primary with an empty event log.
func NewReplicatedController(cl *cluster.Cluster, opts Options) *ReplicatedController {
	return &ReplicatedController{Controller: NewController(cl, opts)}
}

// Log returns the event log (read-only view).
func (r *ReplicatedController) Log() []Event { return r.log }

// SubmitJob logs and applies.
func (r *ReplicatedController) SubmitJob(job *dag.Job) error {
	if err := r.Controller.SubmitJob(job); err != nil {
		return err
	}
	r.log = append(r.log, Event{Kind: EvSubmitJob, Job: job.Clone()})
	return nil
}

// TaskFinished logs and applies.
func (r *ReplicatedController) TaskFinished(ref TaskRef, attempt int) {
	r.log = append(r.log, Event{Kind: EvTaskFinished, Task: ref, Attempt: attempt})
	r.Controller.TaskFinished(ref, attempt)
}

// TaskFailed logs and applies.
func (r *ReplicatedController) TaskFailed(ref TaskRef, attempt int, kind FailureKind) {
	r.log = append(r.log, Event{Kind: EvTaskFailed, Task: ref, Attempt: attempt, Failure: kind})
	r.Controller.TaskFailed(ref, attempt, kind)
}

// TaskOutputLost logs and applies.
func (r *ReplicatedController) TaskOutputLost(ref TaskRef) {
	r.log = append(r.log, Event{Kind: EvTaskOutputLost, Task: ref})
	r.Controller.TaskOutputLost(ref)
}

// MachineFailed logs and applies.
func (r *ReplicatedController) MachineFailed(id cluster.MachineID) {
	r.log = append(r.log, Event{Kind: EvMachineFailed, Machine: id})
	r.Controller.MachineFailed(id)
}

// MachineUnhealthy logs and applies.
func (r *ReplicatedController) MachineUnhealthy(id cluster.MachineID) {
	r.log = append(r.log, Event{Kind: EvMachineUnhealthy, Machine: id})
	r.Controller.MachineUnhealthy(id)
}

// ExecutorRestarted logs and applies.
func (r *ReplicatedController) ExecutorRestarted(e cluster.ExecutorID) {
	r.log = append(r.log, Event{Kind: EvExecutorRestarted, Executor: e})
	r.Controller.ExecutorRestarted(e)
}

// Compact drops log entries belonging to jobs that have since completed or
// failed — the state they produced is terminal and a shadow does not need
// to reconstruct it. Cluster-level events are always retained.
func (r *ReplicatedController) Compact() {
	keep := r.log[:0]
	for _, ev := range r.log {
		switch ev.Kind {
		case EvSubmitJob:
			if r.JobDone(ev.Job.ID) || r.JobFailed(ev.Job.ID) {
				continue
			}
		case EvTaskFinished, EvTaskFailed, EvTaskOutputLost:
			if r.JobDone(ev.Task.Job) || r.JobFailed(ev.Task.Job) {
				continue
			}
		case EvMachineFailed, EvMachineUnhealthy, EvExecutorRestarted:
			// cluster-level: always retained
		}
		keep = append(keep, ev)
	}
	r.log = keep
}

// Failover replays the log into a fresh controller over a fresh cluster of
// the same shape — the shadow taking over after the primary dies. The
// replayed controller's Drain output is discarded (those actions already
// happened under the primary); the caller resumes feeding live events and
// interpreting new actions. It returns an error if replay diverges (an
// event is rejected), which would indicate the log is corrupt.
func Failover(log []Event, ccfg cluster.Config, opts Options) (*ReplicatedController, error) {
	shadow := NewReplicatedController(cluster.New(ccfg), opts)
	for i, ev := range log {
		switch ev.Kind {
		case EvSubmitJob:
			if ev.Job == nil {
				return nil, fmt.Errorf("core: shadow replay: event %d has no job", i)
			}
			if err := shadow.SubmitJob(ev.Job.Clone()); err != nil {
				return nil, fmt.Errorf("core: shadow replay diverged at event %d: %w", i, err)
			}
		case EvTaskFinished:
			shadow.Controller.TaskFinished(ev.Task, ev.Attempt)
			shadow.log = append(shadow.log, ev)
		case EvTaskFailed:
			shadow.Controller.TaskFailed(ev.Task, ev.Attempt, ev.Failure)
			shadow.log = append(shadow.log, ev)
		case EvTaskOutputLost:
			shadow.Controller.TaskOutputLost(ev.Task)
			shadow.log = append(shadow.log, ev)
		case EvMachineFailed:
			shadow.Controller.MachineFailed(ev.Machine)
			shadow.log = append(shadow.log, ev)
		case EvMachineUnhealthy:
			shadow.Controller.MachineUnhealthy(ev.Machine)
			shadow.log = append(shadow.log, ev)
		case EvExecutorRestarted:
			shadow.Controller.ExecutorRestarted(ev.Executor)
			shadow.log = append(shadow.log, ev)
		default:
			return nil, fmt.Errorf("core: shadow replay: unknown event kind %d", ev.Kind)
		}
		shadow.Controller.Drain() // actions already executed by the primary
	}
	return shadow, nil
}
