// Package flow implements swiftd's global flow controller: the admission
// valve between arriving job submissions and core.Controller.SubmitJob.
// Instead of admitting whatever arrives — the thundering-herd failure mode
// of a dumb worker pool — the controller enforces a bounded in-flight task
// budget derived from cluster capacity, a bounded FIFO wait queue, a
// token-bucket arrival governor whose refill is throttled by a congestion
// signal (scheduler queue depth + free-executor ratio), and explicit load
// shedding with a retry-after hint once the queue is full. Admission
// degrades gracefully: accept → queue → slow → shed.
//
// Like core.Controller, the flow controller is a deterministic state
// machine: it owns no clock, no goroutines and no randomness. Callers pass
// virtual time in (swiftd injects monotonic wall micros; the simulator and
// experiments inject engine time), which is what lets the chaos soak replay
// admission decisions byte-identically per seed.
package flow

import (
	"errors"
	"fmt"
	"sort"

	"swift/internal/core"
	"swift/internal/obs"
	"swift/internal/sim"
)

// Level is the congestion level of the admission state machine.
type Level int8

const (
	// LevelAccept admits arrivals directly: queue empty, budget headroom,
	// tokens available.
	LevelAccept Level = iota
	// LevelQueue parks arrivals in the bounded FIFO wait queue.
	LevelQueue
	// LevelSlow is queueing with the token bucket dry — arrivals outpace
	// the governed admission rate, the queue is draining slower than it
	// fills.
	LevelSlow
	// LevelShed rejects arrivals outright: the wait queue is full (or the
	// controller is draining).
	LevelShed
)

// String renders the level.
func (l Level) String() string {
	switch l {
	case LevelAccept:
		return "accept"
	case LevelQueue:
		return "queue"
	case LevelSlow:
		return "slow"
	case LevelShed:
		return "shed"
	}
	return "invalid"
}

// Decision classifies the outcome of one submission offer.
type Decision int8

const (
	// Admitted submissions go straight to the scheduler.
	Admitted Decision = iota
	// Queued submissions wait in the FIFO queue for capacity.
	Queued
	// Shed submissions are rejected with a retry-after hint.
	Shed
)

// String renders the decision.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case Queued:
		return "queued"
	case Shed:
		return "shed"
	}
	return "invalid"
}

// ErrOverloaded is the errors.Is target for load-shed rejections.
var ErrOverloaded = errors.New("flow: overloaded")

// ErrDraining rejects submissions arriving after Drain.
var ErrDraining = errors.New("flow: draining")

// OverloadError is the typed rejection returned when a submission is shed:
// the wait queue is full, and the caller should retry no sooner than
// RetryAfter. It matches ErrOverloaded under errors.Is.
type OverloadError struct {
	QueueLen   int
	RetryAfter sim.Duration
}

// Error renders the rejection.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("flow: overloaded: wait queue full (%d deep), retry after %.3fs", e.QueueLen, e.RetryAfter.Seconds())
}

// Is matches ErrOverloaded.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Config tunes the flow controller. The zero value derives sane bounds
// from cluster capacity.
type Config struct {
	// MaxInFlightTasks bounds admitted-but-unfinished work (pending +
	// running tasks across live jobs). Default: 4× total executors.
	MaxInFlightTasks int
	// MaxQueue bounds the FIFO wait queue. Default 64.
	MaxQueue int
	// Rate is the token-bucket refill in jobs per second; 0 disables the
	// arrival governor (admission is then budget-bounded only).
	Rate float64
	// Burst is the token-bucket capacity. Default max(1, round(Rate)).
	Burst int
	// RetryAfterCap bounds the retry-after hint. Default 30s.
	RetryAfterCap sim.Duration
	// Metrics, when non-nil, receives admitted/queued/shed counters,
	// queue-depth and in-flight gauges, and the admission-wait histogram.
	Metrics *obs.Registry
	// TenantBudgets bounds each listed tenant's in-flight tasks on top of
	// the global budget (tenants not listed are unbounded). Enforcement
	// needs SetTenantLookup; a tenant with nothing in flight admits one
	// oversized job alone, mirroring the global liveness rule. When any
	// budget is set the wait queue releases the first admissible item
	// rather than strictly the head, so one saturated tenant cannot block
	// the others' queued work.
	TenantBudgets map[string]int
}

func (c Config) withDefaults(totalExecutors int) Config {
	if c.MaxInFlightTasks <= 0 {
		c.MaxInFlightTasks = 4 * totalExecutors
		if c.MaxInFlightTasks <= 0 {
			c.MaxInFlightTasks = 1
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.Burst <= 0 {
		c.Burst = int(c.Rate + 0.5)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 30 * sim.Second
	}
	return c
}

// Item is one submission moving through admission.
type Item struct {
	ID       string
	Tenant   string // empty counts as core.DefaultTenant
	Tasks    int
	Payload  interface{}
	Enqueued sim.Time
}

// Outcome reports what happened to one offered submission.
type Outcome struct {
	Decision Decision
	Level    Level
	// QueuePos is the 1-based wait-queue position for Queued outcomes.
	QueuePos int
	// RetryAfter is the back-off hint for Shed outcomes.
	RetryAfter sim.Duration
}

// Stats are cumulative admission statistics.
type Stats struct {
	Admitted  int64 // directly or from the queue
	Queued    int64 // ever parked in the wait queue
	Shed      int64
	Decisions int64 // offers processed
	QueueLen  int   // current wait-queue depth
	MaxQueue  int   // high-water mark of the wait queue
	Tokens    float64
	Draining  bool
}

// Controller is the global flow controller.
type Controller struct {
	cfg      Config
	tokens   float64
	last     sim.Time
	queue    []Item
	head     int // queue[head:] is live; amortised O(1) pops
	draining bool
	stats    Stats
	inflight func(tenant string) int // nil disables tenant budgets
	tstats   map[string]*TenantStat
}

// TenantStat is one tenant's cumulative admission statistics plus its
// current budget occupancy.
type TenantStat struct {
	Tenant   string
	Admitted int64
	Queued   int64 // ever parked in the wait queue
	Shed     int64
	QueueLen int // current wait-queue entries
	InFlight int // current in-flight tasks (0 without a lookup)
	Budget   int // configured budget (0 = unbounded)
}

// NewController builds a flow controller; capacity defaults derive from
// the cluster's total executor count.
func NewController(cfg Config, totalExecutors int) *Controller {
	cfg = cfg.withDefaults(totalExecutors)
	return &Controller{cfg: cfg, tokens: float64(cfg.Burst)}
}

// Congestion maps a controller snapshot to a score in [0,1]: 0 is an idle
// cluster, 1 is saturated with a deep scheduler backlog. With no backlog
// the busy-executor ratio is squared so a half-busy cluster still reads as
// lightly loaded; once graphlet requests wait in the scheduler queue the
// remaining headroom shrinks with backlog depth.
func Congestion(snap core.StateSnapshot) float64 {
	total := snap.TotalExecutors
	if total <= 0 {
		return 1
	}
	busy := 1 - float64(snap.FreeExecutors)/float64(total)
	if snap.SchedQueueLen == 0 {
		return busy * busy
	}
	backlog := float64(snap.SchedQueueLen) / float64(snap.SchedQueueLen+total)
	return busy + (1-busy)*backlog
}

// refill advances the token bucket to `now`. Congestion throttles the
// refill: at full congestion admission stops entirely and arrivals queue
// (then shed) until the cluster breathes again — this is the backpressure
// half of the design.
func (f *Controller) refill(now sim.Time, snap core.StateSnapshot) {
	f.cfg.Metrics.Gauge("flow.inflight_tasks", float64(snap.InFlightTasks()))
	if f.cfg.Rate <= 0 {
		return
	}
	if now < f.last {
		now = f.last
	}
	dt := (now - f.last).Seconds()
	f.last = now
	if dt <= 0 {
		return
	}
	f.tokens += f.cfg.Rate * (1 - Congestion(snap)) * dt
	if max := float64(f.cfg.Burst); f.tokens > max {
		f.tokens = max
	}
}

func (f *Controller) hasToken() bool { return f.cfg.Rate <= 0 || f.tokens >= 1 }

func (f *Controller) takeToken() {
	if f.cfg.Rate > 0 {
		f.tokens--
	}
}

// fits reports whether admitting `tasks` more stays within the in-flight
// budget. A submission larger than the whole budget can never fit beside
// anything, so it is admitted alone (when nothing is in flight) rather
// than parked forever — a liveness guarantee the drain path relies on.
func (f *Controller) fits(snap core.StateSnapshot, tasks int) bool {
	inflight := snap.InFlightTasks()
	return inflight+tasks <= f.cfg.MaxInFlightTasks || inflight == 0
}

// SetTenantLookup wires the per-tenant in-flight reader (normally
// core.Controller.TenantInFlight) that TenantBudgets enforcement and
// TenantStats occupancy read from. Without it tenant budgets are inert.
func (f *Controller) SetTenantLookup(fn func(tenant string) int) { f.inflight = fn }

// tenantOf normalizes an item's tenant label the same way the scheduler
// does, so budgets and stats key consistently.
func tenantOf(it Item) string {
	if it.Tenant == "" {
		return core.DefaultTenant
	}
	return it.Tenant
}

// tstat returns (creating on first use) a tenant's stat record.
func (f *Controller) tstat(name string) *TenantStat {
	if f.tstats == nil {
		f.tstats = make(map[string]*TenantStat)
	}
	ts := f.tstats[name]
	if ts == nil {
		ts = &TenantStat{Tenant: name}
		f.tstats[name] = ts
	}
	return ts
}

// tenantFits reports whether admitting the item stays within its tenant's
// budget. Unlisted tenants (or a missing lookup) always fit; a tenant with
// nothing in flight admits one oversized job alone — the same liveness
// rule fits applies globally.
func (f *Controller) tenantFits(it Item) bool {
	if len(f.cfg.TenantBudgets) == 0 || f.inflight == nil {
		return true
	}
	budget := f.cfg.TenantBudgets[tenantOf(it)]
	if budget <= 0 {
		return true
	}
	in := f.inflight(tenantOf(it))
	return in+it.Tasks <= budget || in == 0
}

// QueueLen returns the current wait-queue depth.
func (f *Controller) QueueLen() int { return len(f.queue) - f.head }

// MaxQueue returns the configured wait-queue bound.
func (f *Controller) MaxQueue() int { return f.cfg.MaxQueue }

// Budget returns the resolved in-flight task budget. In-flight work only
// exceeds it via the oversized-job liveness rule (a job larger than the
// whole budget admits alone on an idle cluster), so observed in-flight is
// bounded by max(Budget, largest admitted job).
func (f *Controller) Budget() int { return f.cfg.MaxInFlightTasks }

// Offer runs the admission state machine for one arriving submission.
// Admitted means the caller must now hand the payload to the scheduler;
// Queued parks it until PopAdmissible releases it; Shed rejects it with a
// typed *OverloadError (errors.Is ErrOverloaded) carrying a retry-after
// hint. Offers after Drain are rejected with ErrDraining.
//
//lint:hotpath
func (f *Controller) Offer(now sim.Time, snap core.StateSnapshot, item Item) (Outcome, error) {
	f.refill(now, snap)
	f.stats.Decisions++
	if f.draining {
		f.stats.Shed++
		f.tstat(tenantOf(item)).Shed++
		f.cfg.Metrics.Count("flow.shed", 1)
		return Outcome{Decision: Shed, Level: LevelShed, RetryAfter: f.retryAfter()}, ErrDraining
	}
	if f.QueueLen() == 0 && f.fits(snap, item.Tasks) && f.tenantFits(item) && f.hasToken() {
		f.takeToken()
		f.stats.Admitted++
		f.tstat(tenantOf(item)).Admitted++
		f.cfg.Metrics.Count("flow.admitted", 1)
		f.observeWait(0)
		return Outcome{Decision: Admitted, Level: LevelAccept}, nil
	}
	if f.QueueLen() >= f.cfg.MaxQueue {
		ra := f.retryAfter()
		f.stats.Shed++
		f.tstat(tenantOf(item)).Shed++
		f.cfg.Metrics.Count("flow.shed", 1)
		return Outcome{Decision: Shed, Level: LevelShed, RetryAfter: ra},
			&OverloadError{QueueLen: f.QueueLen(), RetryAfter: ra}
	}
	item.Enqueued = now
	f.queue = append(f.queue, item)
	f.stats.Queued++
	f.tstat(tenantOf(item)).Queued++
	f.cfg.Metrics.Count("flow.queued", 1)
	f.cfg.Metrics.Gauge("flow.queue_depth", float64(f.QueueLen()))
	if q := f.QueueLen(); q > f.stats.MaxQueue {
		f.stats.MaxQueue = q
	}
	lvl := LevelQueue
	if !f.hasToken() {
		lvl = LevelSlow
	}
	return Outcome{Decision: Queued, Level: lvl, QueuePos: f.QueueLen()}, nil
}

// PopAdmissible releases the queue head if it can be admitted now: the
// in-flight budget has room and (unless draining) a token is available.
// Callers loop with a fresh snapshot after each admission. Draining
// bypasses the token governor so queued-but-unadmitted work re-admits
// promptly before shutdown. With tenant budgets active the scan releases
// the first admissible entry instead of strictly the head, so a tenant
// parked at its budget cannot head-of-line-block the rest of the queue.
//
//lint:hotpath
func (f *Controller) PopAdmissible(now sim.Time, snap core.StateSnapshot) (Item, bool) {
	f.refill(now, snap)
	if f.QueueLen() == 0 {
		return Item{}, false
	}
	idx := f.head
	if len(f.cfg.TenantBudgets) > 0 && f.inflight != nil {
		idx = -1
		for i := f.head; i < len(f.queue); i++ {
			if f.fits(snap, f.queue[i].Tasks) && f.tenantFits(f.queue[i]) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return Item{}, false
		}
	} else if !f.fits(snap, f.queue[idx].Tasks) {
		return Item{}, false
	}
	if !f.draining {
		if !f.hasToken() {
			return Item{}, false
		}
		f.takeToken()
	}
	it := f.queue[idx]
	if idx == f.head {
		f.head++
		if f.head == len(f.queue) {
			f.queue = f.queue[:0]
			f.head = 0
		} else if f.head > 64 && 2*f.head >= len(f.queue) {
			n := copy(f.queue, f.queue[f.head:])
			f.queue = f.queue[:n]
			f.head = 0
		}
	} else {
		f.queue = append(f.queue[:idx], f.queue[idx+1:]...)
	}
	f.stats.Admitted++
	f.tstat(tenantOf(it)).Admitted++
	f.cfg.Metrics.Count("flow.admitted", 1)
	f.cfg.Metrics.Gauge("flow.queue_depth", float64(f.QueueLen()))
	f.observeWait((now - it.Enqueued).Seconds())
	return it, true
}

// CancelQueued removes a queued submission by ID before it is admitted.
func (f *Controller) CancelQueued(id string) bool {
	for i := f.head; i < len(f.queue); i++ {
		if f.queue[i].ID == id {
			f.queue = append(f.queue[:i], f.queue[i+1:]...)
			f.cfg.Metrics.Count("flow.cancelled", 1)
			f.cfg.Metrics.Gauge("flow.queue_depth", float64(f.QueueLen()))
			return true
		}
	}
	return false
}

// Drain stops new admissions: subsequent offers shed with ErrDraining,
// while already-queued submissions keep draining through PopAdmissible
// with the token governor bypassed.
func (f *Controller) Drain() { f.draining = true }

// Draining reports whether Drain was called.
func (f *Controller) Draining() bool { return f.draining }

// TenantStats returns per-tenant admission statistics sorted by tenant
// name: cumulative decision counters plus current wait-queue occupancy,
// in-flight tasks (when a lookup is wired) and the configured budget.
func (f *Controller) TenantStats() []TenantStat {
	names := make(map[string]bool, len(f.tstats)+len(f.cfg.TenantBudgets))
	for n := range f.tstats {
		names[n] = true
	}
	for n := range f.cfg.TenantBudgets {
		names[n] = true
	}
	if len(names) == 0 {
		return nil
	}
	depth := make(map[string]int)
	for i := f.head; i < len(f.queue); i++ {
		depth[tenantOf(f.queue[i])]++
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	out := make([]TenantStat, 0, len(sorted))
	for _, n := range sorted {
		ts := TenantStat{Tenant: n}
		if have := f.tstats[n]; have != nil {
			ts = *have
		}
		ts.QueueLen = depth[n]
		ts.Budget = f.cfg.TenantBudgets[n]
		if f.inflight != nil {
			ts.InFlight = f.inflight(n)
		}
		out = append(out, ts)
	}
	return out
}

// Stats returns cumulative admission statistics.
func (f *Controller) Stats() Stats {
	s := f.stats
	s.QueueLen = f.QueueLen()
	s.Tokens = f.tokens
	s.Draining = f.draining
	return s
}

// LevelFor reports the admission level a hypothetical arrival of the given
// size would see right now (diagnostic only; Offer is authoritative).
//
//lint:hotpath
func (f *Controller) LevelFor(snap core.StateSnapshot, tasks int) Level {
	switch {
	case f.draining || f.QueueLen() >= f.cfg.MaxQueue:
		return LevelShed
	case f.QueueLen() == 0 && f.fits(snap, tasks) && f.hasToken():
		return LevelAccept
	case f.hasToken():
		return LevelQueue
	}
	return LevelSlow
}

// retryAfter estimates when a shed client should try again: the time for
// the current queue (plus the rejected arrival) to drain at the governed
// rate, floored at 100ms and capped by config.
func (f *Controller) retryAfter() sim.Duration {
	rate := f.cfg.Rate
	if rate <= 0 {
		rate = 10
	}
	d := sim.FromSeconds(float64(f.QueueLen()+1) / rate)
	if d < 100*sim.Millisecond {
		d = 100 * sim.Millisecond
	}
	if d > f.cfg.RetryAfterCap {
		d = f.cfg.RetryAfterCap
	}
	return d
}

// observeWait records one admission wait (seconds) in the latency
// histogram; direct admissions record zero so quantiles cover every
// admitted submission.
func (f *Controller) observeWait(secs float64) {
	f.cfg.Metrics.Observe("flow.admission_wait_s", 0, 60, 60, secs)
}
