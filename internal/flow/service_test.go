package flow

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/sim"
)

// testClock is a monotonic fake: every read advances 1ms.
type testClock struct{ ticks int64 }

func (c *testClock) now() sim.Time { return sim.Time(atomic.AddInt64(&c.ticks, 1)) * sim.Millisecond }

func testJob(id string, stages, tasks int) *dag.Job {
	j := dag.NewJob(id)
	prev := ""
	for s := 0; s < stages; s++ {
		name := fmt.Sprintf("s%d", s)
		if err := j.AddStage(&dag.Stage{Name: name, Tasks: tasks, Idempotent: true}); err != nil {
			panic(err)
		}
		if prev != "" {
			if err := j.AddEdge(&dag.Edge{From: prev, To: name, Mode: dag.Barrier}); err != nil {
				panic(err)
			}
		}
		prev = name
	}
	return j
}

// driver completes every started task straight away and records each
// observed action exactly as delivered by the sink.
type driver struct {
	svc *Service

	mu      sync.Mutex
	starts  map[string]int // "job/stage[i]#attempt" -> times seen
	actions int64
	jobsRun map[string]bool // jobs with at least one started task
}

func newDriver() *driver {
	return &driver{starts: make(map[string]int), jobsRun: make(map[string]bool)}
}

func (d *driver) sink(_ sim.Time, acts []core.Action) {
	var finish []core.ActStartTask
	d.mu.Lock()
	for _, a := range acts {
		d.actions++
		if st, ok := a.(core.ActStartTask); ok {
			key := fmt.Sprintf("%s/%s[%d]#%d", st.Task.Job, st.Task.Stage, st.Task.Index, st.Attempt)
			d.starts[key]++
			d.jobsRun[st.Task.Job] = true
			finish = append(finish, st)
		}
	}
	d.mu.Unlock()
	for _, st := range finish {
		d.svc.TaskFinished(st.Task, st.Attempt)
	}
}

func newTestService(fcfg Config, clock func() sim.Time) (*Service, *driver) {
	cl := cluster.New(cluster.Config{Machines: 4, ExecutorsPerMachine: 2})
	d := newDriver()
	svc := NewService(cl, core.DefaultOptions(), fcfg, clock)
	d.svc = svc
	svc.SetActionSink(d.sink)
	return svc, d
}

// Happy path: submit, run to completion via the sink, drain.
func TestServiceLifecycle(t *testing.T) {
	clk := &testClock{}
	svc, _ := newTestService(Config{MaxInFlightTasks: 100, MaxQueue: 4}, clk.now)
	out, err := svc.Submit(testJob("j1", 2, 3))
	if err != nil || out.Decision != Admitted {
		t.Fatalf("submit = %+v, %v", out, err)
	}
	if !svc.JobDone("j1") {
		t.Fatal("job not completed by the driver loop")
	}
	if v := svc.Invariants(); len(v) != 0 {
		t.Fatalf("invariants violated: %v", v)
	}
	svc.Drain()
	select {
	case <-svc.Drained():
	case <-time.After(time.Second):
		t.Fatal("drained channel never closed on an idle service")
	}
	if _, err := svc.Submit(testJob("late", 1, 1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit error = %v, want ErrDraining", err)
	}
}

// Queued jobs admit once capacity frees, and a drain waits for them.
func TestServiceQueueDrain(t *testing.T) {
	clk := &testClock{}
	// Budget of 4 tasks against 3-task jobs: one runs, others queue.
	svc, d := newTestService(Config{MaxInFlightTasks: 4, MaxQueue: 8}, clk.now)
	decisions := make(map[Decision]int)
	for i := 0; i < 5; i++ {
		out, err := svc.Submit(testJob(fmt.Sprintf("q%d", i), 1, 3))
		if err != nil {
			t.Fatalf("submit q%d: %v", i, err)
		}
		decisions[out.Decision]++
	}
	svc.Drain()
	select {
	case <-svc.Drained():
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed with queued work")
	}
	for i := 0; i < 5; i++ {
		if !svc.JobDone(fmt.Sprintf("q%d", i)) {
			t.Fatalf("job q%d lost (decisions: %v)", i, decisions)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for key, n := range d.starts {
		if n != 1 {
			t.Fatalf("start %s delivered %d times", key, n)
		}
	}
}

// A panicking submission is isolated: the submitter gets an error, the
// service keeps serving later submissions.
func TestServicePanicIsolation(t *testing.T) {
	clk := &testClock{}
	cl := cluster.New(cluster.Config{Machines: 2, ExecutorsPerMachine: 2})
	opts := core.DefaultOptions()
	opts.Partition = func(j *dag.Job) ([]*graphlet.Graphlet, error) {
		if strings.HasPrefix(j.ID, "poison") {
			panic("partitioner bug")
		}
		return core.GraphletPartition(j)
	}
	d := newDriver()
	svc := NewService(cl, opts, Config{MaxInFlightTasks: 100, MaxQueue: 4}, clk.now)
	d.svc = svc
	svc.SetActionSink(d.sink)

	_, err := svc.Submit(testJob("poison-1", 1, 1))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("poisoned submit error = %v", err)
	}
	out, err := svc.Submit(testJob("fine", 1, 1))
	if err != nil || out.Decision != Admitted {
		t.Fatalf("service dead after panic: %+v, %v", out, err)
	}
	if !svc.JobDone("fine") {
		t.Fatal("job after panic not completed")
	}
	if st := svc.Status(); st.Panics != 1 {
		t.Fatalf("panic counter = %d, want 1", st.Panics)
	}
}

// Concurrent submitters (race detector): admission is linearizable — every
// submission gets exactly one outcome, no start action is ever delivered
// twice, and no admitted job is lost.
func TestServiceConcurrentSubmitters(t *testing.T) {
	clk := &testClock{}
	svc, d := newTestService(Config{MaxInFlightTasks: 12, MaxQueue: 16}, clk.now)
	const workers, perWorker = 8, 6
	var wg sync.WaitGroup
	outcomes := make([]map[string]Decision, workers)
	for w := 0; w < workers; w++ {
		w := w
		outcomes[w] = make(map[string]Decision)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-j%d", w, i)
				out, err := svc.Submit(testJob(id, 2, 2))
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				outcomes[w][id] = out.Decision
			}
		}()
	}
	wg.Wait()
	svc.Drain()
	select {
	case <-svc.Drained():
	case <-time.After(10 * time.Second):
		t.Fatal("drain never completed after concurrent submissions")
	}

	shed, admitted := 0, 0
	for w := range outcomes {
		for id, dec := range outcomes[w] {
			switch dec {
			case Shed:
				shed++
				if svc.JobDone(id) || svc.JobFailed(id) {
					t.Fatalf("shed job %s reached the scheduler", id)
				}
			case Admitted, Queued:
				admitted++
				if !svc.JobDone(id) {
					t.Fatalf("accepted job %s was lost (decision %v)", id, dec)
				}
			}
		}
	}
	if admitted == 0 {
		t.Fatal("no submissions admitted")
	}
	if admitted+shed != workers*perWorker {
		t.Fatalf("outcomes: %d admitted + %d shed != %d submitted", admitted, shed, workers*perWorker)
	}
	d.mu.Lock()
	for key, n := range d.starts {
		if n != 1 {
			t.Fatalf("action for %s observed %d times, want exactly once", key, n)
		}
	}
	d.mu.Unlock()
	if v := svc.Invariants(); len(v) != 0 {
		t.Fatalf("invariants violated: %v", v)
	}
	st := svc.Status()
	if st.Flow.Admitted != int64(admitted) || st.Flow.Shed != int64(shed) {
		t.Fatalf("service stats (admitted=%d shed=%d) disagree with client view (admitted=%d shed=%d)",
			st.Flow.Admitted, st.Flow.Shed, admitted, shed)
	}
}

// Duplicate submission IDs are refused without disturbing the original.
func TestServiceDuplicateID(t *testing.T) {
	clk := &testClock{}
	svc, _ := newTestService(Config{MaxInFlightTasks: 100, MaxQueue: 4}, clk.now)
	if _, err := svc.Submit(testJob("dup", 1, 1)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if _, err := svc.Submit(testJob("dup", 1, 1)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate submit error = %v", err)
	}
	if !svc.JobDone("dup") {
		t.Fatal("original job harmed by duplicate submission")
	}
}

// Cancel removes queued submissions and aborts live jobs.
func TestServiceCancel(t *testing.T) {
	clk := &testClock{}
	// Tiny budget and a driver that never finishes tasks: jobs stay live.
	cl := cluster.New(cluster.Config{Machines: 1, ExecutorsPerMachine: 1})
	svc := NewService(cl, core.DefaultOptions(), Config{MaxInFlightTasks: 2, MaxQueue: 4}, clk.now)
	if out, err := svc.Submit(testJob("live", 1, 2)); err != nil || out.Decision != Admitted {
		t.Fatalf("submit live = %+v, %v", out, err)
	}
	if out, err := svc.Submit(testJob("parked", 1, 2)); err != nil || out.Decision != Queued {
		t.Fatalf("submit parked = %+v, %v", out, err)
	}
	if err := svc.Cancel("parked"); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if err := svc.Cancel("live"); err != nil {
		t.Fatalf("cancel live: %v", err)
	}
	if !svc.JobFailed("live") {
		t.Fatal("cancelled live job not failed")
	}
	if err := svc.Cancel("nope"); err == nil {
		t.Fatal("cancel of unknown id succeeded")
	}
}

// End-to-end tenant budgets: the flow controller's budget check reads the
// scheduler's live per-tenant in-flight counters, so a tenant at its
// budget queues while other tenants keep flowing, and Status reports the
// per-tenant picture.
func TestServiceTenantBudgets(t *testing.T) {
	clock := &testClock{}
	cl := cluster.New(cluster.Config{Machines: 4, ExecutorsPerMachine: 2})
	svc := NewService(cl, core.DefaultOptions(),
		Config{TenantBudgets: map[string]int{"a": 2}}, clock.now)
	// No action sink: started tasks never finish, so in-flight stays put.

	ja1 := testJob("a1", 1, 2)
	ja1.Tenant = "a"
	if out, err := svc.Submit(ja1); err != nil || out.Decision != Admitted {
		t.Fatalf("a1: %v %v", out.Decision, err)
	}
	ja2 := testJob("a2", 1, 1)
	ja2.Tenant = "a"
	if out, err := svc.Submit(ja2); err != nil || out.Decision != Queued {
		t.Fatalf("a2 at budget: %v %v, want queued", out.Decision, err)
	}
	// Tenant b flows past the parked a2 (submitted later, admitted by the
	// pump during this very Submit call).
	jb := testJob("b1", 1, 1)
	jb.Tenant = "b"
	if out, err := svc.Submit(jb); err != nil || out.Decision != Queued {
		t.Fatalf("b1: %v %v, want queued (then pumped)", out.Decision, err)
	}
	st := svc.Status()
	byName := map[string]TenantStat{}
	for _, ts := range st.Tenants {
		byName[ts.Tenant] = ts
	}
	a, b := byName["a"], byName["b"]
	if a.Admitted != 1 || a.QueueLen != 1 || a.InFlight != 2 || a.Budget != 2 {
		t.Fatalf("tenant a = %+v", a)
	}
	if b.Admitted != 1 || b.QueueLen != 0 || b.InFlight != 1 {
		t.Fatalf("tenant b = %+v", b)
	}
	if svc.JobDone("b1") {
		t.Fatal("b1 cannot be done with no sink")
	}
	if v := svc.Invariants(); len(v) != 0 {
		t.Fatalf("invariants: %v", v)
	}
}
