package flow

import (
	"errors"
	"fmt"
	"testing"

	"swift/internal/core"
	"swift/internal/obs"
	"swift/internal/sim"
)

func snap(free, total, inflight, queue int) core.StateSnapshot {
	return core.StateSnapshot{
		PendingTasks:   inflight,
		SchedQueueLen:  queue,
		FreeExecutors:  free,
		TotalExecutors: total,
	}
}

func item(id string, tasks int) Item { return Item{ID: id, Tasks: tasks, Payload: id} }

// The accept → queue → shed ladder: direct admits while budget and queue
// allow, queueing when the budget is full, shedding once the queue is.
func TestOfferLadder(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 10, MaxQueue: 2}, 4)
	idle := snap(4, 4, 0, 0)
	out, err := f.Offer(0, idle, item("a", 8))
	if err != nil || out.Decision != Admitted || out.Level != LevelAccept {
		t.Fatalf("idle offer = %+v, %v", out, err)
	}
	busy := snap(0, 4, 8, 1)
	out, err = f.Offer(1, busy, item("b", 8))
	if err != nil || out.Decision != Queued || out.QueuePos != 1 {
		t.Fatalf("over-budget offer = %+v, %v", out, err)
	}
	out, err = f.Offer(2, busy, item("c", 8))
	if err != nil || out.Decision != Queued || out.QueuePos != 2 {
		t.Fatalf("second queued offer = %+v, %v", out, err)
	}
	out, err = f.Offer(3, busy, item("d", 8))
	if out.Decision != Shed || err == nil {
		t.Fatalf("full-queue offer = %+v, %v", out, err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shed error %v is not a typed OverloadError matching ErrOverloaded", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatal("shed rejection carries no retry-after hint")
	}
	if got := f.Stats(); got.Admitted != 1 || got.Queued != 2 || got.Shed != 1 || got.MaxQueue != 2 {
		t.Fatalf("stats = %+v", got)
	}
}

// Arrivals behind a non-empty queue never jump it, even with budget room.
func TestNoQueueJumping(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 10, MaxQueue: 4}, 4)
	if out, _ := f.Offer(0, snap(0, 4, 10, 0), item("big", 4)); out.Decision != Queued {
		t.Fatalf("setup: big not queued: %+v", out)
	}
	// Capacity for a small job exists now, but FIFO order wins.
	if out, _ := f.Offer(1, snap(4, 4, 2, 0), item("small", 1)); out.Decision != Queued || out.QueuePos != 2 {
		t.Fatalf("small arrival jumped the queue: %+v", out)
	}
}

// PopAdmissible releases FIFO-ordered work only when it fits the budget.
func TestPopAdmissible(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 10, MaxQueue: 4}, 4)
	full := snap(0, 4, 10, 0)
	for i := 0; i < 3; i++ {
		if out, _ := f.Offer(sim.Time(i), full, item(fmt.Sprintf("j%d", i), 4)); out.Decision != Queued {
			t.Fatalf("setup offer %d not queued", i)
		}
	}
	if _, ok := f.PopAdmissible(10, full); ok {
		t.Fatal("pop admitted against a full budget")
	}
	it, ok := f.PopAdmissible(20, snap(2, 4, 6, 0))
	if !ok || it.ID != "j0" {
		t.Fatalf("pop = %+v, %v; want head j0", it, ok)
	}
	it, ok = f.PopAdmissible(30, snap(4, 4, 2, 0))
	if !ok || it.ID != "j1" {
		t.Fatalf("second pop = %+v, %v; want j1", it, ok)
	}
	if f.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1", f.QueueLen())
	}
}

// A job larger than the entire budget admits alone instead of parking
// forever (the drain-liveness guarantee).
func TestOversizedJobAdmitsAlone(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 8, MaxQueue: 4}, 4)
	if out, _ := f.Offer(0, snap(4, 4, 0, 0), item("huge", 50)); out.Decision != Admitted {
		t.Fatalf("oversized job on idle cluster = %+v, want admitted", out)
	}
	if out, _ := f.Offer(1, snap(0, 4, 50, 0), item("huge2", 50)); out.Decision != Queued {
		t.Fatalf("second oversized job = %+v, want queued", out)
	}
	if _, ok := f.PopAdmissible(2, snap(0, 4, 50, 0)); ok {
		t.Fatal("oversized job popped while another is in flight")
	}
	if it, ok := f.PopAdmissible(3, snap(4, 4, 0, 0)); !ok || it.ID != "huge2" {
		t.Fatalf("oversized job did not admit alone: %+v, %v", it, ok)
	}
}

// The token bucket paces admissions at Rate and congestion throttles the
// refill to zero on a saturated cluster.
func TestTokenGovernorAndCongestion(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 1000, MaxQueue: 10, Rate: 2, Burst: 1}, 4)
	idle := snap(4, 4, 0, 0)
	if out, _ := f.Offer(0, idle, item("a", 1)); out.Decision != Admitted {
		t.Fatalf("first offer = %+v", out)
	}
	// Token spent; the immediate next arrival queues at LevelSlow.
	out, _ := f.Offer(1, idle, item("b", 1))
	if out.Decision != Queued || out.Level != LevelSlow {
		t.Fatalf("token-dry offer = %+v, want queued/slow", out)
	}
	// Idle cluster refills at full Rate: after 500ms one token is back.
	if _, ok := f.PopAdmissible(sim.FromSeconds(0.5), idle); !ok {
		t.Fatal("token not refilled on idle cluster after 1/Rate seconds")
	}
	// Saturated cluster with scheduler backlog: congestion ≈ 1, refill ≈ 0.
	if c := Congestion(snap(0, 4, 100, 50)); c < 0.9 {
		t.Fatalf("saturated congestion = %f, want ≈1", c)
	}
	if c := Congestion(snap(4, 4, 0, 0)); c != 0 {
		t.Fatalf("idle congestion = %f, want 0", c)
	}
	f2 := NewController(Config{MaxInFlightTasks: 1000, MaxQueue: 10, Rate: 2, Burst: 1}, 4)
	sat := snap(0, 4, 100, 50)
	if out, _ := f2.Offer(0, sat, item("a", 1)); out.Decision != Admitted {
		t.Fatalf("burst token missing: %+v", out)
	}
	f2.Offer(1, sat, item("b", 1))
	if _, ok := f2.PopAdmissible(sim.FromSeconds(10), sat); ok {
		t.Fatal("tokens refilled on a fully congested cluster")
	}
}

// Drain sheds new offers with ErrDraining but re-admits queued work with
// the governor bypassed.
func TestDrainReadmitsQueuedWork(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 100, MaxQueue: 10, Rate: 0.001, Burst: 1}, 4)
	idle := snap(4, 4, 0, 0)
	f.Offer(0, idle, item("a", 1))
	if out, _ := f.Offer(1, idle, item("b", 1)); out.Decision != Queued {
		t.Fatal("setup: b not queued")
	}
	f.Drain()
	if !f.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	out, err := f.Offer(2, idle, item("c", 1))
	if out.Decision != Shed || !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain offer = %+v, %v", out, err)
	}
	// The governor would not refill for ~1000s; drain bypasses it.
	if it, ok := f.PopAdmissible(3, idle); !ok || it.ID != "b" {
		t.Fatalf("queued work not re-admitted during drain: %+v, %v", it, ok)
	}
}

// CancelQueued removes exactly the named submission.
func TestCancelQueued(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 1, MaxQueue: 10}, 4)
	busy := snap(0, 4, 1, 0)
	f.Offer(0, busy, item("a", 1))
	f.Offer(1, busy, item("b", 1))
	f.Offer(2, busy, item("c", 1))
	if !f.CancelQueued("b") {
		t.Fatal("cancel of queued submission failed")
	}
	if f.CancelQueued("b") {
		t.Fatal("double cancel succeeded")
	}
	free := snap(4, 4, 0, 0)
	first, _ := f.PopAdmissible(3, free)
	second, _ := f.PopAdmissible(4, free)
	if first.ID != "a" || second.ID != "c" {
		t.Fatalf("queue after cancel = [%s %s], want [a c]", first.ID, second.ID)
	}
}

// Metrics counters mirror decisions.
func TestMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewController(Config{MaxInFlightTasks: 4, MaxQueue: 1, Metrics: reg}, 4)
	idle := snap(4, 4, 0, 0)
	busy := snap(0, 4, 4, 0)
	f.Offer(0, idle, item("a", 1))
	f.Offer(1, busy, item("b", 1))
	f.Offer(2, busy, item("c", 1))
	f.PopAdmissible(3, snap(4, 4, 0, 0))
	if got := reg.Counter("flow.admitted"); got != 2 {
		t.Fatalf("flow.admitted = %d, want 2", got)
	}
	if got := reg.Counter("flow.queued"); got != 1 {
		t.Fatalf("flow.queued = %d, want 1", got)
	}
	if got := reg.Counter("flow.shed"); got != 1 {
		t.Fatalf("flow.shed = %d, want 1", got)
	}
}

// Same inputs → byte-identical decision sequence (the determinism the
// chaos soak's trace hash relies on).
func TestDecisionsDeterministic(t *testing.T) {
	run := func() string {
		f := NewController(Config{MaxInFlightTasks: 16, MaxQueue: 4, Rate: 3, Burst: 2}, 8)
		s := ""
		for i := 0; i < 64; i++ {
			sn := snap(i%9, 8, (i*7)%40, i%5)
			out, _ := f.Offer(sim.Time(i)*sim.Second/4, sn, item(fmt.Sprintf("j%d", i), 1+i%12))
			s += out.Decision.String() + "|"
			if i%3 == 0 {
				if it, ok := f.PopAdmissible(sim.Time(i)*sim.Second/4+1, sn); ok {
					s += "pop:" + it.ID + "|"
				}
			}
		}
		return s
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("decision sequence diverged:\n%s\n%s", a, b)
	}
}

func BenchmarkFlowDecision(b *testing.B) {
	f := NewController(Config{MaxInFlightTasks: 1 << 30, MaxQueue: 64}, 4096)
	sn := snap(2048, 4096, 100, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, _ := f.Offer(sim.Time(i), sn, Item{ID: "j", Tasks: 8})
		if out.Decision != Admitted {
			b.Fatalf("decision = %v", out.Decision)
		}
	}
}

// Tenant budgets bound each listed tenant's in-flight work, and the wait
// queue releases the first admissible entry so a tenant parked at its
// budget cannot head-of-line-block the others.
func TestTenantBudgets(t *testing.T) {
	inflight := map[string]int{}
	f := NewController(Config{MaxInFlightTasks: 100, MaxQueue: 8, TenantBudgets: map[string]int{"a": 4}}, 4)
	f.SetTenantLookup(func(n string) int { return inflight[n] })
	titem := func(id, tenant string, tasks int) Item {
		return Item{ID: id, Tenant: tenant, Tasks: tasks, Payload: id}
	}
	s := snap(4, 4, 0, 0)
	out, err := f.Offer(0, s, titem("a1", "a", 3))
	if err != nil || out.Decision != Admitted {
		t.Fatalf("a1 within budget: %v %v", out.Decision, err)
	}
	inflight["a"] = 3
	if out, _ = f.Offer(0, s, titem("a2", "a", 3)); out.Decision != Queued {
		t.Fatalf("a2 over budget = %v, want queued", out.Decision)
	}
	if out, _ = f.Offer(0, s, titem("b1", "b", 3)); out.Decision != Queued {
		t.Fatalf("b1 behind non-empty queue = %v, want queued", out.Decision)
	}
	// b1 releases past the parked a2.
	it, ok := f.PopAdmissible(0, s)
	if !ok || it.ID != "b1" {
		t.Fatalf("pop = %v %v, want b1", it.ID, ok)
	}
	if _, ok := f.PopAdmissible(0, s); ok {
		t.Fatal("a2 released while tenant a is at budget")
	}
	inflight["a"] = 0
	if it, ok = f.PopAdmissible(0, s); !ok || it.ID != "a2" {
		t.Fatalf("pop after a freed = %v %v, want a2", it.ID, ok)
	}
}

// A tenant with nothing in flight admits one job larger than its whole
// budget — the per-tenant mirror of the global oversized-alone rule.
func TestTenantOversizedAdmitsAlone(t *testing.T) {
	inflight := map[string]int{}
	f := NewController(Config{MaxInFlightTasks: 100, MaxQueue: 8, TenantBudgets: map[string]int{"a": 2}}, 4)
	f.SetTenantLookup(func(n string) int { return inflight[n] })
	s := snap(4, 4, 0, 0)
	out, _ := f.Offer(0, s, Item{ID: "big", Tenant: "a", Tasks: 10})
	if out.Decision != Admitted {
		t.Fatalf("idle tenant oversized job = %v, want admitted", out.Decision)
	}
	inflight["a"] = 10
	if out, _ = f.Offer(0, s, Item{ID: "next", Tenant: "a", Tasks: 1}); out.Decision != Queued {
		t.Fatalf("busy tenant = %v, want queued", out.Decision)
	}
}

// TenantStats: per-tenant counters, sorted, empty tenant under the
// default name, budget column from config.
func TestTenantStats(t *testing.T) {
	f := NewController(Config{MaxInFlightTasks: 4, MaxQueue: 1, TenantBudgets: map[string]int{"zeta": 7}}, 4)
	s := snap(4, 4, 3, 0)                                  // 3 tasks already in flight
	f.Offer(0, s, Item{ID: "d1", Tasks: 1})                // default tenant, admitted
	f.Offer(0, s, Item{ID: "b1", Tenant: "b", Tasks: 100}) // over global budget, queued
	f.Offer(0, s, Item{ID: "b2", Tenant: "b", Tasks: 1})   // queue full, shed
	ts := f.TenantStats()
	if len(ts) != 3 {
		t.Fatalf("tenants = %d (%v), want 3", len(ts), ts)
	}
	if ts[0].Tenant != "b" || ts[1].Tenant != "default" || ts[2].Tenant != "zeta" {
		t.Fatalf("order = %s,%s,%s", ts[0].Tenant, ts[1].Tenant, ts[2].Tenant)
	}
	if ts[1].Admitted != 1 || ts[0].Queued != 1 || ts[0].Shed != 1 || ts[0].QueueLen != 1 {
		t.Fatalf("stats = %+v", ts)
	}
	if ts[2].Budget != 7 {
		t.Fatalf("zeta budget = %d, want 7", ts[2].Budget)
	}
}
