package flow

import (
	"fmt"
	"sync"

	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/sim"
)

// Service is the always-on façade swiftd exposes: one mutex linearises
// flow admission and every core.Controller event, so concurrent RPC
// handlers, executor completion timers and the drain path all observe one
// consistent state machine. The wrapped controllers stay single-threaded
// and deterministic; the service owns no clock either — callers inject one
// (swiftd injects monotonic wall micros, tests inject a fake).
//
// Actions emitted by the core controller are collected under the lock and
// handed to the registered sink after it is released, so a driver may call
// straight back into the service (e.g. to finish a zero-cost task) without
// deadlocking.
type Service struct {
	clock func() sim.Time
	sink  func(now sim.Time, acts []core.Action)

	mu        sync.Mutex
	flow      *Controller
	ctrl      *core.Controller
	submitted map[string]bool // IDs ever accepted (admitted or queued)
	panics    int64

	drainedOnce sync.Once
	drained     chan struct{}
}

// ServiceStatus is a point-in-time view of the service.
type ServiceStatus struct {
	Snapshot core.StateSnapshot
	Flow     Stats
	Tenants  []TenantStat // per-tenant admission view, sorted by name
	Level    Level        // admission level a 1-task arrival would see
	Panics   int64        // submissions isolated after panicking
}

// NewService builds a service over a fresh core controller. The flow
// controller's tenant-budget enforcement reads the scheduler's O(1)
// per-tenant in-flight counters.
func NewService(cl *cluster.Cluster, copts core.Options, fcfg Config, clock func() sim.Time) *Service {
	s := &Service{
		clock:     clock,
		flow:      NewController(fcfg, cl.NumExecutors()),
		ctrl:      core.NewController(cl, copts),
		submitted: make(map[string]bool),
		drained:   make(chan struct{}),
	}
	s.flow.SetTenantLookup(s.ctrl.TenantInFlight)
	return s
}

// SetActionSink registers the driver callback receiving controller
// actions. Must be called before the service starts accepting work; the
// sink runs outside the service lock.
func (s *Service) SetActionSink(fn func(now sim.Time, acts []core.Action)) { s.sink = fn }

// finish dispatches collected actions and closes the drained channel once
// the service is idle after Drain. Called outside the lock.
func (s *Service) finish(now sim.Time, acts []core.Action, idle bool) {
	if s.sink != nil && len(acts) > 0 {
		s.sink(now, acts)
	}
	if idle {
		s.drainedOnce.Do(func() { close(s.drained) })
	}
}

// idleLocked reports whether a draining service has no work left.
func (s *Service) idleLocked() bool {
	return s.flow.Draining() && s.flow.QueueLen() == 0 && s.ctrl.Snapshot().LiveJobs == 0
}

// Submit pushes one job through admission. A panic anywhere in validation
// or scheduling is isolated to this request: the service stays up and the
// submitter gets an error.
func (s *Service) Submit(job *dag.Job) (Outcome, error) {
	if job == nil {
		return Outcome{}, fmt.Errorf("flow: nil job")
	}
	now := s.clock()
	s.mu.Lock()
	out, acts, err := s.submitLocked(now, job)
	idle := s.idleLocked()
	s.mu.Unlock()
	s.finish(now, acts, idle)
	return out, err
}

func (s *Service) submitLocked(now sim.Time, job *dag.Job) (out Outcome, acts []core.Action, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics++
			acts = append(acts, s.ctrl.Drain()...)
			err = fmt.Errorf("flow: submit %q panicked: %v", job.ID, r)
		}
	}()
	if s.submitted[job.ID] {
		return Outcome{}, nil, fmt.Errorf("flow: duplicate submission id %q", job.ID)
	}
	out, err = s.flow.Offer(now, s.ctrl.Snapshot(), Item{
		ID: job.ID, Tenant: core.TenantName(job), Tasks: job.NumTasks(), Payload: job,
	})
	if err != nil {
		return out, nil, err
	}
	s.submitted[job.ID] = true
	if out.Decision == Admitted {
		if serr := s.ctrl.SubmitJob(job); serr != nil {
			return out, s.ctrl.Drain(), serr
		}
	}
	acts = append(acts, s.ctrl.Drain()...)
	acts = append(acts, s.pumpLocked(now)...)
	return out, acts, nil
}

// pumpLocked admits queued submissions while capacity allows.
func (s *Service) pumpLocked(now sim.Time) []core.Action {
	var acts []core.Action
	for {
		it, ok := s.flow.PopAdmissible(now, s.ctrl.Snapshot())
		if !ok {
			return acts
		}
		if err := s.ctrl.SubmitJob(it.Payload.(*dag.Job)); err != nil {
			// Invalid job discovered at deferred admission: drop it. The
			// submitter saw a Queued outcome; Status exposes the drop.
			s.flow.cfg.Metrics.Count("flow.pump_errors", 1)
		}
		acts = append(acts, s.ctrl.Drain()...)
	}
}

// TaskFinished feeds one completion event (from the daemon's executor
// timers) and pumps the wait queue with any freed capacity.
func (s *Service) TaskFinished(ref core.TaskRef, attempt int) {
	now := s.clock()
	s.mu.Lock()
	s.ctrl.TaskFinished(ref, attempt)
	acts := s.ctrl.Drain()
	acts = append(acts, s.pumpLocked(now)...)
	idle := s.idleLocked()
	s.mu.Unlock()
	s.finish(now, acts, idle)
}

// TaskFailed feeds one failure event.
func (s *Service) TaskFailed(ref core.TaskRef, attempt int, kind core.FailureKind) {
	now := s.clock()
	s.mu.Lock()
	s.ctrl.TaskFailed(ref, attempt, kind)
	acts := s.ctrl.Drain()
	acts = append(acts, s.pumpLocked(now)...)
	idle := s.idleLocked()
	s.mu.Unlock()
	s.finish(now, acts, idle)
}

// Tick advances the token bucket and pumps the wait queue; the daemon
// calls it periodically so queued work admits even between completions.
func (s *Service) Tick() {
	now := s.clock()
	s.mu.Lock()
	acts := s.pumpLocked(now)
	idle := s.idleLocked()
	s.mu.Unlock()
	s.finish(now, acts, idle)
}

// Cancel removes a submission: queued submissions leave the wait queue,
// admitted live jobs are aborted in the scheduler.
func (s *Service) Cancel(id string) error {
	now := s.clock()
	s.mu.Lock()
	var err error
	var acts []core.Action
	if s.flow.CancelQueued(id) {
		delete(s.submitted, id)
	} else {
		err = s.ctrl.CancelJob(id, "client request")
		acts = append(acts, s.ctrl.Drain()...)
		acts = append(acts, s.pumpLocked(now)...)
	}
	idle := s.idleLocked()
	s.mu.Unlock()
	s.finish(now, acts, idle)
	return err
}

// Drain initiates shutdown: new offers shed, queued work re-admits
// (governor bypassed), and Drained closes once nothing is left in flight.
func (s *Service) Drain() {
	now := s.clock()
	s.mu.Lock()
	s.flow.Drain()
	acts := s.pumpLocked(now)
	idle := s.idleLocked()
	s.mu.Unlock()
	s.finish(now, acts, idle)
}

// Drained is closed once a draining service has no queued or live work.
func (s *Service) Drained() <-chan struct{} { return s.drained }

// Status returns a point-in-time view.
func (s *Service) Status() ServiceStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.ctrl.Snapshot()
	return ServiceStatus{
		Snapshot: snap,
		Flow:     s.flow.Stats(),
		Tenants:  s.flow.TenantStats(),
		Level:    s.flow.LevelFor(snap, 1),
		Panics:   s.panics,
	}
}

// JobDone reports whether a job completed successfully.
func (s *Service) JobDone(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.JobDone(id)
}

// JobFailed reports whether a job was abandoned.
func (s *Service) JobFailed(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.JobFailed(id)
}

// Invariants runs the core controller's full self-audit under the lock.
func (s *Service) Invariants() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl.CheckInvariants()
}
