package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the recorded stream renders as one JSON
// document loadable in Perfetto / about://tracing. Each job becomes a
// process; within it, tid 0 ("control") carries the job span and instant
// events, tids 1+g carry graphlet spans, and tids execTidBase+e carry
// task-attempt spans on their executor's timeline (which makes occupancy
// visible). Machine health, Cache Worker and chaos-fault events live in a
// synthetic "cluster" process. Output is deterministic: pids follow first
// appearance in the event stream, unmatched spans flush in sorted order,
// and args maps serialise with encoding/json's sorted keys — two runs of
// one seed are byte-identical.

// execTidBase offsets executor-timeline tids above graphlet tids (a job's
// graphlet count is bounded by its stage count, far below this).
const execTidBase = 1000

// clusterPid hosts machine-scope events; job pids start above it.
const clusterPid = 1

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type openTask struct {
	start    Event
	key      string // job|stage|index|attempt, for deterministic flush
	pid, tid int
}

// WriteChromeTrace renders the event stream as Chrome trace-event JSON.
// A nil recorder writes an empty (but valid) trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	body := r.buildChrome()
	var b bytes.Buffer
	b.WriteString("{\"traceEvents\":[")
	for i := range body {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
		enc, err := json.Marshal(&body[i])
		if err != nil {
			return fmt.Errorf("obs: marshal trace event: %w", err)
		}
		b.Write(enc)
	}
	b.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	if _, err := w.Write(b.Bytes()); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

// jobState accumulates per-job span bookkeeping during the build pass.
type jobState struct {
	pid       int
	id        string
	submit    int64
	hasSubmit bool
	end       int64
	result    string
	// graphlet index -> [firstQueued, lastDone, haveQueued, haveDone]
	gQueued map[int]int64
	gDone   map[int]int64
	// executor tids seen, for thread_name metadata
	execTids map[int]bool
}

func (r *Recorder) buildChrome() []traceEvent {
	if r == nil || len(r.events) == 0 {
		return nil
	}
	var traceEnd int64
	for i := range r.events {
		if ts := int64(r.events[i].T); ts > traceEnd {
			traceEnd = ts
		}
	}

	jobs := make(map[string]*jobState)
	var jobOrder []*jobState
	nextPid := clusterPid + 1
	clusterUsed := false
	open := make(map[string]*openTask)
	var body []traceEvent

	jobOf := func(id string) *jobState {
		js, ok := jobs[id]
		if !ok {
			js = &jobState{pid: nextPid, id: id, end: traceEnd, result: "unfinished",
				gQueued: make(map[int]int64), gDone: make(map[int]int64),
				execTids: make(map[int]bool)}
			nextPid++
			jobs[id] = js
			jobOrder = append(jobOrder, js)
		}
		return js
	}
	instant := func(e *Event, js *jobState, tid int, cat, name string, args map[string]any) {
		body = append(body, traceEvent{Name: name, Cat: cat, Ph: "i", Ts: int64(e.T),
			Pid: js.pid, Tid: tid, S: "t", Args: args})
	}
	taskKey := func(e *Event) string {
		return fmt.Sprintf("%s|%s|%d|%d", e.Job, e.Stage, e.Index, e.Attempt)
	}
	taskName := func(e *Event) string {
		return fmt.Sprintf("%s[%d]#%d", e.Stage, e.Index, e.Attempt)
	}
	closeTask := func(e *Event, end string, args map[string]any) {
		ot, ok := open[taskKey(e)]
		if !ok {
			return
		}
		delete(open, taskKey(e))
		a := map[string]any{"reason": ot.start.Label, "graphlet": ot.start.Graphlet, "end": end}
		for k, v := range args {
			a[k] = v
		}
		body = append(body, traceEvent{Name: taskName(e), Cat: "task", Ph: "X",
			Ts: int64(ot.start.T), Dur: int64(e.T) - int64(ot.start.T),
			Pid: ot.pid, Tid: ot.tid, Args: a})
	}

	for i := range r.events {
		e := &r.events[i]
		switch e.Kind {
		case EvJobSubmit:
			js := jobOf(e.Job)
			js.submit, js.hasSubmit = int64(e.T), true
		case EvJobDone:
			js := jobOf(e.Job)
			js.end, js.result = int64(e.T), "completed"
		case EvJobFail:
			js := jobOf(e.Job)
			js.end, js.result = int64(e.T), "failed: "+e.Label
			instant(e, js, 0, "recovery", "job-failed", map[string]any{"reason": e.Label})
		case EvJobRestart:
			instant(e, jobOf(e.Job), 0, "recovery", "job-restart", nil)
		case EvGraphletQueued:
			js := jobOf(e.Job)
			if _, seen := js.gQueued[e.Graphlet]; !seen {
				js.gQueued[e.Graphlet] = int64(e.T)
			}
			instant(e, js, 1+e.Graphlet, "graphlet", fmt.Sprintf("queued g%d (%d pending)", e.Graphlet, e.Index), nil)
		case EvGraphletDone:
			js := jobOf(e.Job)
			js.gDone[e.Graphlet] = int64(e.T)
		case EvTaskStart:
			js := jobOf(e.Job)
			tid := execTidBase + e.Executor
			js.execTids[tid] = true
			// A same-key span still open (shouldn't happen: attempts are
			// unique) would leak; close it defensively at this instant.
			closeTask(e, "superseded", nil)
			open[taskKey(e)] = &openTask{start: *e, key: taskKey(e), pid: js.pid, tid: tid}
		case EvTaskFinish:
			closeTask(e, "finish", map[string]any{
				"launch_s": e.Launch, "read_s": e.Read, "process_s": e.Process, "write_s": e.Write})
		case EvTaskAbort:
			closeTask(e, "abort", nil)
		case EvTaskFail:
			closeTask(e, "fail", map[string]any{"kind": e.Label})
			instant(e, jobOf(e.Job), 0, "recovery",
				fmt.Sprintf("fail %s[%d]#%d %s", e.Stage, e.Index, e.Attempt, e.Label), nil)
		case EvOutputLost:
			instant(e, jobOf(e.Job), 0, "recovery",
				fmt.Sprintf("output-lost %s[%d] %s", e.Stage, e.Index, e.Label), nil)
		case EvResend:
			instant(e, jobOf(e.Job), 0, "recovery",
				fmt.Sprintf("resend %s->%s[%d]", e.Label, e.Stage, e.Index), nil)
		case EvShuffleMode:
			instant(e, jobOf(e.Job), 0, "shuffle",
				fmt.Sprintf("shuffle %s>%s=%s", e.Stage, e.To, e.Label),
				map[string]any{"edge_size": e.Index, "bytes": e.Bytes})
		case EvShuffleDegraded:
			instant(e, jobOf(e.Job), 0, "shuffle",
				fmt.Sprintf("degrade %s>%s %s", e.Stage, e.To, e.Label), nil)
		case EvMachineFailed, EvMachineReadOnly, EvMachineHealthy, EvCacheWorkerLost:
			clusterUsed = true
			name := e.Kind.String()
			body = append(body, traceEvent{Name: fmt.Sprintf("%s m%d", name, e.Machine),
				Cat: "machine", Ph: "i", Ts: int64(e.T), Pid: clusterPid, Tid: 1 + e.Machine, S: "t"})
		case EvFault:
			clusterUsed = true
			body = append(body, traceEvent{Name: "fault " + e.Label, Cat: "fault",
				Ph: "i", Ts: int64(e.T), Pid: clusterPid, Tid: 0, S: "t"})
		case EvReclaim:
			instant(e, jobOf(e.Job), 0, "recovery",
				fmt.Sprintf("reclaim g%d (%d tasks, tenant %s)", e.Graphlet, e.Index, e.Label), nil)
		case EvTenantShare:
			// Share accounting has no job/machine timeline to land on; it is
			// carried by the stream hash and breakdowns, not the Chrome view.
		case EvReplicate:
			instant(e, jobOf(e.Job), 0, "shuffle",
				fmt.Sprintf("replicate %s[%d] x%d", e.Stage, e.Index, e.Graphlet),
				map[string]any{"machine": e.Machine})
		case EvReplicaServed:
			instant(e, jobOf(e.Job), 0, "recovery",
				fmt.Sprintf("replica-served %s[%d] m%d", e.Stage, e.Index, e.Machine), nil)
		case EvShuffleAdapted:
			instant(e, jobOf(e.Job), 0, "shuffle",
				fmt.Sprintf("adapt %s>%s %s", e.Stage, e.To, e.Label), nil)
		}
	}

	// Flush unclosed task spans (still running at trace end) in sorted order.
	if len(open) > 0 {
		keys := make([]string, 0, len(open))
		for k := range open {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ot := open[k]
			body = append(body, traceEvent{Name: taskName(&ot.start), Cat: "task", Ph: "X",
				Ts: int64(ot.start.T), Dur: traceEnd - int64(ot.start.T),
				Pid: ot.pid, Tid: ot.tid,
				Args: map[string]any{"reason": ot.start.Label, "graphlet": ot.start.Graphlet, "end": "unfinished"}})
		}
	}

	// Job and graphlet spans, jobs in pid order.
	for _, js := range jobOrder {
		start := js.submit
		if !js.hasSubmit {
			start = 0
		}
		body = append(body, traceEvent{Name: js.id, Cat: "job", Ph: "X",
			Ts: start, Dur: js.end - start, Pid: js.pid, Tid: 0,
			Args: map[string]any{"result": js.result}})
		gs := make([]int, 0, len(js.gQueued))
		for g := range js.gQueued {
			gs = append(gs, g)
		}
		sort.Ints(gs)
		for _, g := range gs {
			from := js.gQueued[g]
			to, done := js.gDone[g]
			state := "done"
			if !done {
				to, state = js.end, "unfinished"
			}
			body = append(body, traceEvent{Name: fmt.Sprintf("g%d", g), Cat: "graphlet", Ph: "X",
				Ts: from, Dur: to - from, Pid: js.pid, Tid: 1 + g,
				Args: map[string]any{"state": state}})
		}
	}

	// Metadata first: process and thread names, cluster then jobs.
	var meta []traceEvent
	md := func(pid, tid int, kind, name string) {
		ev := traceEvent{Name: kind, Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
		ev.Tid = tid
		meta = append(meta, ev)
	}
	if clusterUsed {
		md(clusterPid, 0, "process_name", "cluster")
	}
	for _, js := range jobOrder {
		md(js.pid, 0, "process_name", "job "+js.id)
		md(js.pid, 0, "thread_name", "control")
		gs := make([]int, 0, len(js.gQueued))
		for g := range js.gQueued {
			gs = append(gs, g)
		}
		sort.Ints(gs)
		for _, g := range gs {
			md(js.pid, 1+g, "thread_name", fmt.Sprintf("graphlet %d", g))
		}
		tids := make([]int, 0, len(js.execTids))
		for tid := range js.execTids {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			md(js.pid, tid, "thread_name", fmt.Sprintf("exec %d", tid-execTidBase))
		}
	}
	return append(meta, body...)
}
