package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"swift/internal/baseline"
	"swift/internal/chaos"
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/obs"
	"swift/internal/sim"
	"swift/internal/simrun"
	"swift/internal/tpch"
)

// failMachine injects a machine crash at 20 s of virtual time — with the
// small cluster saturated by q9, this reliably kills running tasks and
// exercises the whole recovery path. failMachineLate crashes the machine
// near the end of the run (q9 on this cluster finishes around 284 s), so
// the killed tail tasks re-run last and the recovery lands on the
// critical path.
const (
	failMachine     = "machine"
	failMachineLate = "machine-late"
)

// runQ9 executes one q9 simulation with an optional injected fault
// ("machine" crashes machine 3; any other non-empty value names a stage for
// a task failure), returning the results (nil rec runs with obs off).
func runQ9(t *testing.T, seed int64, rec *obs.Recorder, fail string) *simrun.Results {
	t.Helper()
	job := tpch.Query(9)
	opts := baseline.Swift()
	opts.Obs = rec
	r := simrun.New(simrun.Config{
		Cluster: cluster.Config{Machines: 20, ExecutorsPerMachine: 8, Model: cluster.DefaultModel()},
		Options: opts,
		Seed:    seed,
	})
	r.SubmitAt(0, job)
	switch fail {
	case "":
	case failMachine:
		r.InjectMachineFailureAt(20*sim.Second, 3)
	case failMachineLate:
		r.InjectMachineFailureAt(275*sim.Second, 3)
	default:
		r.InjectTaskFailureAt(20*sim.Second, job.ID, fail, core.FailCrash)
	}
	res := r.Run()
	if jr := res.Jobs[job.ID]; jr == nil || !jr.Completed {
		t.Fatalf("q9 did not complete (seed %d, fail %q)", seed, fail)
	}
	return res
}

func chromeJSON(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := rec.WriteChromeTrace(&b); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return b.Bytes()
}

// TestTraceDeterminism is the hard contract: two runs of the same seed
// produce the identical event stream — equal FNV hashes and byte-identical
// Chrome trace, registry snapshot and breakdown table.
func TestTraceDeterminism(t *testing.T) {
	recs := [2]*obs.Recorder{obs.New(), obs.New()}
	for _, rec := range recs {
		runQ9(t, 7, rec, failMachine)
	}
	if h0, h1 := recs[0].StreamHash(), recs[1].StreamHash(); h0 != h1 {
		t.Fatalf("stream hashes differ across same-seed runs: %016x != %016x", h0, h1)
	}
	if len(recs[0].Events()) == 0 {
		t.Fatal("no events recorded")
	}
	if j0, j1 := chromeJSON(t, recs[0]), chromeJSON(t, recs[1]); !bytes.Equal(j0, j1) {
		t.Fatal("chrome traces not byte-identical across same-seed runs")
	}
	if s0, s1 := recs[0].Registry().Snapshot(), recs[1].Registry().Snapshot(); s0 != s1 {
		t.Fatalf("registry snapshots differ:\n%s\n---\n%s", s0, s1)
	}
	var b0, b1 bytes.Buffer
	if err := recs[0].WriteBreakdown(&b0); err != nil {
		t.Fatal(err)
	}
	if err := recs[1].WriteBreakdown(&b1); err != nil {
		t.Fatal(err)
	}
	if b0.String() != b1.String() {
		t.Fatal("breakdown tables differ across same-seed runs")
	}
}

// TestRecordingDoesNotPerturb asserts the observer effect is zero: every
// Results field is identical with recording on and off.
func TestRecordingDoesNotPerturb(t *testing.T) {
	for _, failStage := range []string{"", failMachine} {
		off := runQ9(t, 11, nil, failStage)
		on := runQ9(t, 11, obs.New(), failStage)
		if off.Makespan != on.Makespan {
			t.Fatalf("failStage=%q: makespan changed with recording on: %v != %v", failStage, off.Makespan, on.Makespan)
		}
		offJobs, onJobs := off.SortedJobs(), on.SortedJobs()
		if len(offJobs) != len(onJobs) {
			t.Fatalf("failStage=%q: job count changed", failStage)
		}
		for i := range offJobs {
			a, b := offJobs[i], onJobs[i]
			if a.ID != b.ID || a.Submit != b.Submit || a.Finish != b.Finish ||
				a.Completed != b.Completed || a.Failed != b.Failed ||
				a.Restarts != b.Restarts || a.Resends != b.Resends ||
				len(a.Samples) != len(b.Samples) {
				t.Fatalf("failStage=%q: job %s summary changed with recording on", failStage, a.ID)
			}
			if !reflect.DeepEqual(a.Samples, b.Samples) {
				t.Fatalf("failStage=%q: job %s task samples changed with recording on", failStage, a.ID)
			}
			if !reflect.DeepEqual(a.Phases, b.Phases) {
				t.Fatalf("failStage=%q: job %s phase records changed with recording on", failStage, a.ID)
			}
		}
		if !reflect.DeepEqual(off.ExecSeries.Points(), on.ExecSeries.Points()) {
			t.Fatalf("failStage=%q: executor series changed with recording on", failStage)
		}
	}
}

// TestChromeTraceWellFormed checks the export parses as JSON and carries
// the span/event structure the ISSUE requires: job, graphlet and
// task-attempt spans, shuffle-mode instants, and recovery instants when a
// failure was injected.
func TestChromeTraceWellFormed(t *testing.T) {
	rec := obs.New()
	runQ9(t, 3, rec, failMachine)
	raw := chromeJSON(t, rec)

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	instants := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ts < 0 || e.Dur < 0 {
			t.Fatalf("negative ts/dur in event %q", e.Name)
		}
		switch e.Ph {
		case "X":
			spans[e.Cat]++
		case "i":
			instants[e.Cat]++
		case "M":
		default:
			t.Fatalf("unexpected phase %q in event %q", e.Ph, e.Name)
		}
	}
	for _, cat := range []string{"job", "graphlet", "task"} {
		if spans[cat] == 0 {
			t.Fatalf("no %q spans in trace (spans: %v)", cat, spans)
		}
	}
	if instants["shuffle"] == 0 {
		t.Fatalf("no shuffle-mode instants in trace (instants: %v)", instants)
	}
	if instants["recovery"] == 0 {
		t.Fatalf("no recovery instants despite injected failure (instants: %v)", instants)
	}
	job := tpch.Query(9)
	if got := spans["task"]; got < job.NumTasks() {
		t.Fatalf("fewer task spans (%d) than tasks (%d)", got, job.NumTasks())
	}
}

// TestNilRecorderSafe exercises every recorder and registry method on nil
// receivers: all must no-op and the exports must still produce output.
func TestNilRecorderSafe(t *testing.T) {
	var r *obs.Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetClock(func() sim.Time { return 0 })
	r.JobSubmitted("j", 1, 1, 1)
	r.JobCompleted("j")
	r.JobFailed("j", "x")
	r.JobRestarted("j")
	r.GraphletQueued("j", 0, 1)
	r.GraphletDone("j", 0)
	r.TaskStarted("j", "s", 0, 1, 0, 0, "fresh")
	r.TaskFinished("j", "s", 0, 1, 0, 1, 2, 3, 4)
	r.TaskAborted("j", "s", 0, 1, 0)
	r.TaskFailed("j", "s", 0, 1, "crash")
	r.OutputLost("j", "s", 0, "no-step")
	r.Resend("j", "s", 0, "p")
	r.ShuffleModeSelected("j", "a", "b", "Direct", 4, 100)
	r.ShuffleDegraded("j", "a", "b", "Local", "Direct")
	r.MachineFailed(0)
	r.MachineReadOnly(0)
	r.MachineHealthy(0)
	r.CacheWorkerLost(0)
	r.Fault("straggler", "t")
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder holds events: %v", got)
	}
	var b bytes.Buffer
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	if !json.Valid(b.Bytes()) {
		t.Fatalf("nil recorder trace is not valid JSON: %s", b.String())
	}
	b.Reset()
	if err := r.WriteBreakdown(&b); err != nil {
		t.Fatalf("nil WriteBreakdown: %v", err)
	}
	if r.Registry() != nil {
		t.Fatal("nil recorder returned a registry")
	}
	r.Registry().Count("x", 1)
	r.Registry().Gauge("g", 1)
	r.Registry().Observe("h", 0, 1, 4, 0.5)
	if got := r.Registry().Snapshot(); got == "" {
		t.Fatal("nil registry snapshot empty")
	}
	if r.StreamHash() != (*obs.Recorder)(nil).StreamHash() {
		t.Fatal("nil stream hash unstable")
	}
}

// TestBreakdownAccountsForJobTime pins the critical-path invariants: the
// per-job total matches the job's measured latency, and the attributed
// columns sum back to the total.
func TestBreakdownAccountsForJobTime(t *testing.T) {
	rec := obs.New()
	res := runQ9(t, 5, rec, "")
	bds := rec.Breakdowns()
	if len(bds) != 1 {
		t.Fatalf("want 1 job breakdown, got %d", len(bds))
	}
	bd := bds[0]
	jr := res.Jobs[bd.Job]
	if jr == nil {
		t.Fatalf("breakdown names unknown job %q", bd.Job)
	}
	if diff := math.Abs(bd.Total - jr.Duration()); diff > 1e-6 {
		t.Fatalf("breakdown total %.6fs != job duration %.6fs", bd.Total, jr.Duration())
	}
	sum := bd.Queue + bd.Launch + bd.Shuffle + bd.Compute + bd.Wait + bd.Recovery
	if diff := math.Abs(sum - bd.Total); diff > 1e-3 {
		t.Fatalf("columns sum to %.6fs, total is %.6fs", sum, bd.Total)
	}
	if bd.Compute <= 0 || bd.Shuffle <= 0 {
		t.Fatalf("clean q9 run should attribute compute and shuffle time: %+v", bd)
	}
	if bd.Recovery != 0 {
		t.Fatalf("clean run attributed recovery time: %+v", bd)
	}
	if bd.Result != "completed" {
		t.Fatalf("result = %q, want completed", bd.Result)
	}
}

// TestBreakdownAttributesRecovery checks an injected machine crash surfaces
// in the attribution. The crash lands near the end of the run so the
// killed tail tasks re-execute on the critical path: the walk must
// attribute their re-run spans (and any marker-bearing gaps) to recovery.
func TestBreakdownAttributesRecovery(t *testing.T) {
	clean := obs.New()
	cleanRes := runQ9(t, 5, clean, "")
	rec := obs.New()
	res := runQ9(t, 5, rec, failMachineLate)
	found := false
	for _, e := range rec.Events() {
		if e.Kind == obs.EvTaskFail || e.Kind == obs.EvOutputLost {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("machine crash on a saturated cluster recorded no failure events")
	}
	bd := rec.Breakdowns()[0]
	cleanDur := cleanRes.SortedJobs()[0].Duration()
	faultDur := res.SortedJobs()[0].Duration()
	if faultDur <= cleanDur {
		t.Fatalf("machine crash did not slow the job (%.3fs vs clean %.3fs)", faultDur, cleanDur)
	}
	if bd.Recovery <= 0 {
		t.Fatalf("failure events present but recovery column is %.6fs (%+v)", bd.Recovery, bd)
	}
}

// TestChaosObsDeterminism runs a small chaos soak twice with fresh
// recorders: equal stream hashes, and the recorder must not change the
// auditor's trace hash either.
func TestChaosObsDeterminism(t *testing.T) {
	run := func(rec *obs.Recorder) *chaos.Result {
		opts := core.DefaultOptions()
		opts.Obs = rec
		return chaos.Run(chaos.Config{Seed: 4, Jobs: 5, Options: &opts})
	}
	r0, r1 := obs.New(), obs.New()
	c0, c1 := run(r0), run(r1)
	if h0, h1 := r0.StreamHash(), r1.StreamHash(); h0 != h1 {
		t.Fatalf("chaos obs streams differ: %016x != %016x", h0, h1)
	}
	if c0.TraceHash != c1.TraceHash {
		t.Fatalf("chaos trace hashes differ: %016x != %016x", c0.TraceHash, c1.TraceHash)
	}
	plain := chaos.Run(chaos.Config{Seed: 4, Jobs: 5})
	if plain.TraceHash != c0.TraceHash {
		t.Fatalf("recording changed the chaos trace hash: %016x != %016x", plain.TraceHash, c0.TraceHash)
	}
	faults := false
	for _, e := range r0.Events() {
		if e.Kind == obs.EvFault {
			faults = true
			break
		}
	}
	if !faults {
		t.Fatal("chaos soak recorded no fault events")
	}
}

// TestRegistrySnapshot pins the deterministic snapshot format: sections in
// counter/gauge/histogram order, names sorted, under/overflow reported.
func TestRegistrySnapshot(t *testing.T) {
	g := obs.NewRegistry()
	g.Count("b.count", 2)
	g.Count("a.count", 1)
	g.Gauge("z.gauge", 1.5)
	g.Observe("lat", 0, 10, 10, 3.2)
	g.Observe("lat", 0, 10, 10, -1) // underflow
	g.Observe("lat", 0, 10, 10, 99) // overflow
	want := "counters:\n" +
		"  a.count                          1\n" +
		"  b.count                          2\n" +
		"gauges:\n" +
		"  z.gauge                          1.5\n" +
		"histograms:\n" +
		"  lat: range=[0,10) total=3 under=1 over=1\n" +
		"    bins 3.5:1\n"
	if got := g.Snapshot(); got != want {
		t.Fatalf("snapshot mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
