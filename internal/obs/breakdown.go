package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Per-job critical-path breakdown: where did each job's wall-clock time
// go? The walk runs backwards from job completion, repeatedly jumping to
// the latest finished task attempt that ends at or before the current
// point. A first-execution attempt's span is split using its recorded
// phase breakdown (launch / read / process / write); a re-execution
// (retry/cascade launch reason) is repeated work that only exists because
// something failed, so its whole span counts as recovery, and everything
// before a job restart is a discarded incarnation, recovery wholesale.
// Gaps between attempts are scheduling queue time, unless a recovery
// marker (task failure, output loss, abort, job restart) falls inside the
// gap, in which case the gap is recovery too. This is a lower-bound
// critical path — it
// follows finish times, not data dependencies — but it is deterministic
// and it answers the Fig.-style question "queue vs. launch vs. compute vs.
// shuffle vs. recovery" per job.

// JobBreakdown is one job's time attribution, all columns in seconds.
// Total = Queue + Launch + Shuffle + Compute + Wait + Recovery (up to
// rounding): Queue is time with no attempt running on the walked path,
// Launch is executor launch, Shuffle is read+write, Compute is process,
// Wait is within-attempt time not covered by the recorded phases (model
// idle), Recovery is discarded-incarnation time (before the last job
// restart), re-execution spans, and gap time containing recovery markers.
type JobBreakdown struct {
	Job    string
	Result string
	Total, Queue, Launch, Shuffle,
	Compute, Wait, Recovery float64
}

// attempt is one closed task attempt on a job's timeline.
type attempt struct {
	start, finish                int64 // microseconds
	launch, read, process, write float64
	rerun                        bool // launched for retry/cascade
}

// Breakdowns computes the per-job attribution for every job in the
// stream, in first-appearance order. Nil recorders return nil.
func (r *Recorder) Breakdowns() []JobBreakdown {
	if r == nil {
		return nil
	}
	var traceEnd int64
	for i := range r.events {
		if ts := int64(r.events[i].T); ts > traceEnd {
			traceEnd = ts
		}
	}
	type openStart struct {
		at    int64
		rerun bool
	}
	type jobAcc struct {
		submit    int64
		hasSubmit bool
		end       int64
		result    string
		attempts  []attempt
		open      map[string]openStart // task key -> start
		markers   []int64              // recovery marker timestamps, in order
		restarts  []int64              // job restart timestamps
	}
	accs := make(map[string]*jobAcc)
	var order []string
	acc := func(job string) *jobAcc {
		a, ok := accs[job]
		if !ok {
			a = &jobAcc{end: traceEnd, result: "unfinished", open: make(map[string]openStart)}
			accs[job] = a
			order = append(order, job)
		}
		return a
	}
	key := func(e *Event) string {
		return fmt.Sprintf("%s|%d|%d", e.Stage, e.Index, e.Attempt)
	}
	for i := range r.events {
		e := &r.events[i]
		switch e.Kind {
		case EvJobSubmit:
			a := acc(e.Job)
			a.submit, a.hasSubmit = int64(e.T), true
		case EvJobDone:
			a := acc(e.Job)
			a.end, a.result = int64(e.T), "completed"
		case EvJobFail:
			a := acc(e.Job)
			a.end, a.result = int64(e.T), "failed"
			a.markers = append(a.markers, int64(e.T))
		case EvTaskStart:
			acc(e.Job).open[key(e)] = openStart{at: int64(e.T), rerun: e.Label != "fresh"}
		case EvTaskFinish:
			a := acc(e.Job)
			if s, ok := a.open[key(e)]; ok {
				delete(a.open, key(e))
				a.attempts = append(a.attempts, attempt{start: s.at, finish: int64(e.T),
					launch: e.Launch, read: e.Read, process: e.Process, write: e.Write,
					rerun: s.rerun})
			}
		case EvTaskAbort, EvTaskFail:
			a := acc(e.Job)
			delete(a.open, key(e))
			a.markers = append(a.markers, int64(e.T))
		case EvOutputLost:
			a := acc(e.Job)
			a.markers = append(a.markers, int64(e.T))
		case EvJobRestart:
			a := acc(e.Job)
			a.markers = append(a.markers, int64(e.T))
			a.restarts = append(a.restarts, int64(e.T))
		default:
			// Graphlet, shuffle, machine, cache-worker and fault events
			// carry no per-job critical-path information.
		}
	}

	out := make([]JobBreakdown, 0, len(order))
	for _, job := range order {
		a := accs[job]
		bd := walkCriticalPath(job, a.submit, a.end, a.result, a.attempts, a.markers, a.restarts)
		out = append(out, bd)
	}
	return out
}

// walkCriticalPath runs the backward walk for one job.
func walkCriticalPath(job string, submit, end int64, result string, attempts []attempt, markers, restarts []int64) JobBreakdown {
	const usec = 1e-6
	bd := JobBreakdown{Job: job, Result: result, Total: float64(end-submit) * usec}
	// Everything before the last job restart belongs to a discarded
	// incarnation: the surviving run starts over from scratch, so that
	// whole prefix is recovery overhead. The walk covers [base, end].
	base := submit
	for _, rt := range restarts {
		if rt > base && rt <= end {
			base = rt
		}
	}
	if base > submit {
		bd.Recovery += float64(base-submit) * usec
	}
	// Latest-finish-first; ties broken by later start, then earlier slice
	// position (stable), keeping the walk deterministic.
	sort.SliceStable(attempts, func(i, j int) bool {
		if attempts[i].finish != attempts[j].finish {
			return attempts[i].finish > attempts[j].finish
		}
		return attempts[i].start > attempts[j].start
	})
	hasMarker := func(from, to int64) bool {
		for _, m := range markers {
			if m > from && m <= to {
				return true
			}
		}
		return false
	}
	gap := func(from, to int64) {
		if to <= from {
			return
		}
		d := float64(to-from) * usec
		if hasMarker(from, to) {
			bd.Recovery += d
		} else {
			bd.Queue += d
		}
	}
	t := end
	i := 0
	for t > base {
		// Next hop: latest attempt finishing at or before t and starting
		// strictly before it (progress guarantee).
		for i < len(attempts) && (attempts[i].finish > t || attempts[i].start >= t) {
			i++
		}
		if i == len(attempts) {
			gap(base, t)
			break
		}
		at := attempts[i]
		if at.finish <= base {
			// Only discarded-incarnation attempts remain below t.
			gap(base, t)
			break
		}
		gap(at.finish, t)
		hi := t
		if at.finish < hi {
			hi = at.finish
		}
		lo := at.start
		if lo < base {
			lo = base
		}
		span := float64(hi-lo) * usec
		if at.rerun {
			// A retry/cascade re-execution is pure recovery overhead: the
			// work it repeats was (or would have been) done already.
			bd.Recovery += span
			t = lo
			i++
			continue
		}
		work := at.launch + at.read + at.process + at.write
		scale := 1.0
		if work > span && work > 0 {
			// The model can overlap phases; never attribute more than the
			// span itself.
			scale = span / work
		}
		bd.Launch += at.launch * scale
		bd.Shuffle += (at.read + at.write) * scale
		bd.Compute += at.process * scale
		if idle := span - work*scale; idle > 0 {
			bd.Wait += idle
		}
		t = lo
		i++
	}
	return bd
}

// WriteBreakdown renders the per-job table as plain text. A nil recorder
// writes a disabled notice.
func (r *Recorder) WriteBreakdown(w io.Writer) error {
	var b bytes.Buffer
	if r == nil {
		b.WriteString("obs: recording disabled\n")
	} else {
		bds := r.Breakdowns()
		b.WriteString("per-job critical path (seconds):\n")
		fmt.Fprintf(&b, "  %-14s %9s %9s %9s %9s %9s %9s %9s  %s\n",
			"job", "total", "queue", "launch", "shuffle", "compute", "wait", "recovery", "result")
		for _, bd := range bds {
			fmt.Fprintf(&b, "  %-14s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f  %s\n",
				bd.Job, bd.Total, bd.Queue, bd.Launch, bd.Shuffle, bd.Compute, bd.Wait, bd.Recovery, bd.Result)
		}
	}
	if _, err := w.Write(b.Bytes()); err != nil {
		return fmt.Errorf("obs: write breakdown: %w", err)
	}
	return nil
}
