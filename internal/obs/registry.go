package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"swift/internal/metrics"
)

// Registry is the counters/gauges/histograms half of the observability
// plane, built on internal/metrics. It is snapshotted at end of run into
// deterministic text (names sorted, fixed formatting). A nil *Registry is
// a valid, disabled registry.
//
// Registry satisfies shuffle.StatsSink structurally, so Cache Workers can
// feed it without the shuffle package importing obs.
type Registry struct {
	counts *metrics.Counter
	gauges map[string]float64
	hists  map[string]*metrics.Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: metrics.NewCounter(),
		gauges: make(map[string]float64),
		hists:  make(map[string]*metrics.Histogram),
	}
}

// Count adds delta to the named counter.
func (g *Registry) Count(name string, delta int64) {
	if g == nil {
		return
	}
	g.counts.Add(name, delta)
}

// Counter returns the current value of a named counter (0 if never
// counted, or for a nil registry).
func (g *Registry) Counter(name string) int64 {
	if g == nil {
		return 0
	}
	return g.counts.Get(name)
}

// Gauge sets the named gauge to v (last write wins).
func (g *Registry) Gauge(name string, v float64) {
	if g == nil {
		return
	}
	g.gauges[name] = v
}

// Observe records v into the named histogram, creating it with the given
// bounds on first use (later bounds are ignored; the first caller fixes
// the shape).
func (g *Registry) Observe(name string, lo, hi float64, bins int, v float64) {
	if g == nil {
		return
	}
	h, ok := g.hists[name]
	if !ok {
		h = metrics.NewHistogram(lo, hi, bins)
		g.hists[name] = h
	}
	h.Add(v)
}

// WriteTo renders the deterministic end-of-run snapshot: counters, gauges
// and histograms, each section sorted by name.
func (g *Registry) WriteTo(w io.Writer) (int64, error) {
	var b bytes.Buffer
	if g == nil {
		b.WriteString("obs: recording disabled\n")
		n, err := w.Write(b.Bytes())
		return int64(n), err
	}
	keys := g.counts.Keys()
	if len(keys) > 0 {
		b.WriteString("counters:\n")
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-32s %d\n", k, g.counts.Get(k))
		}
	}
	if len(g.gauges) > 0 {
		names := make([]string, 0, len(g.gauges))
		for k := range g.gauges {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("gauges:\n")
		for _, k := range names {
			fmt.Fprintf(&b, "  %-32s %g\n", k, g.gauges[k])
		}
	}
	if len(g.hists) > 0 {
		names := make([]string, 0, len(g.hists))
		for k := range g.hists {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("histograms:\n")
		for _, k := range names {
			h := g.hists[k]
			fmt.Fprintf(&b, "  %s: range=[%g,%g) total=%d under=%d over=%d\n",
				k, h.Lo, h.Hi, h.Total, h.Underflow, h.Overflow)
			// One compact row of non-empty bins keeps snapshots greppable.
			var cells []string
			for i, c := range h.Counts {
				if c > 0 {
					cells = append(cells, fmt.Sprintf("%g:%d", h.BinCenter(i), c))
				}
			}
			if len(cells) > 0 {
				fmt.Fprintf(&b, "    bins %s\n", strings.Join(cells, " "))
			}
		}
	}
	n, err := w.Write(b.Bytes())
	return int64(n), err
}

// Snapshot returns WriteTo's output as a string.
func (g *Registry) Snapshot() string {
	var b bytes.Buffer
	// bytes.Buffer writes cannot fail.
	_, _ = g.WriteTo(&b)
	return b.String()
}
