// Package obs is the deterministic observability plane: a span/event
// recorder plus a counters/gauges/histogram registry threaded through the
// controller, the discrete-event simulator, the shuffle store and the
// chaos engine. Everything it captures is a pure function of the
// simulation seed — the recorder only observes (it never feeds back into
// scheduling), timestamps come from the simulated clock, and every export
// iterates in deterministic order — so two runs of the same seed produce
// byte-identical traces (the same discipline the chaos engine's FNV trace
// hash enforces, and what lets "where did job J's 40 seconds go?" be
// answered reproducibly for any simrun or chaos soak).
//
// The recorder's event stream exports two ways: Chrome trace-event JSON
// (WriteChromeTrace; loadable in Perfetto / about://tracing) with per-job
// processes, per-graphlet and per-task-attempt spans on executor
// timelines, and a plain-text per-job critical-path breakdown
// (WriteBreakdown) splitting each job's latency into queue / launch /
// shuffle / compute / wait / recovery.
//
// A nil *Recorder is valid and records nothing: call sites thread the
// recorder unconditionally and pay one nil check when observability is
// off, which is also what guarantees recording cannot perturb scheduling
// outcomes.
package obs

import (
	"fmt"

	"swift/internal/sim"
)

// Kind classifies one recorded event.
type Kind uint8

// Event kinds. Job/graphlet/task events carry the identifiers named on
// them; machine events carry Machine; Label holds the kind-specific tag
// (shuffle mode, failure kind, start reason, fault kind).
const (
	// EvJobSubmit marks job admission (stage/task/graphlet counts in
	// Index/Attempt/Graphlet order: stages, tasks, graphlets).
	EvJobSubmit Kind = iota
	// EvJobDone marks successful job completion.
	EvJobDone
	// EvJobFail marks job abandonment; Label holds the reason.
	EvJobFail
	// EvJobRestart marks the JobRestart recovery policy resetting a job.
	EvJobRestart
	// EvGraphletQueued marks a graphlet registering with the resource
	// scheduler (fresh admission or recovery requeue); Index holds the
	// pending-task count.
	EvGraphletQueued
	// EvGraphletDone marks a graphlet finishing its last task.
	EvGraphletDone
	// EvTaskStart marks a task attempt launching on an executor; Label
	// holds the start reason (fresh/retry/cascade).
	EvTaskStart
	// EvTaskFinish marks a successful task attempt completion and carries
	// the phase breakdown (Launch/Read/Process/Write seconds).
	EvTaskFinish
	// EvTaskAbort marks the controller cancelling a running attempt.
	EvTaskAbort
	// EvTaskFail marks a detected task failure; Label holds the failure
	// kind (crash/app-error) and detection channel.
	EvTaskFail
	// EvOutputLost marks a completed task's buffered output being lost;
	// Label is "no-step" when no recovery step was needed, "rerun" when
	// the task re-runs.
	EvOutputLost
	// EvResend marks surviving producers replaying buffered output to a
	// relaunched idempotent task; Stage is the receiving task's stage and
	// Label the producing stage.
	EvResend
	// EvShuffleMode marks the shuffle mode selected for an edge at
	// admission; Stage→To name the edge, Label the mode, Bytes the edge
	// bytes and Index the shuffle edge size (M×N links).
	EvShuffleMode
	// EvShuffleDegraded marks a Cache-Worker-dependent edge falling back
	// after a worker crash; Label holds "old->new".
	EvShuffleDegraded
	// EvMachineFailed marks heartbeat-detected machine death.
	EvMachineFailed
	// EvMachineReadOnly marks the health monitor draining a machine.
	EvMachineReadOnly
	// EvMachineHealthy marks a machine re-admitted to the pool.
	EvMachineHealthy
	// EvCacheWorkerLost marks a machine's Cache Worker process dying while
	// the machine survives.
	EvCacheWorkerLost
	// EvFault marks a chaos-engine fault being applied; Label holds the
	// fault kind and the target description.
	EvFault
	// EvReclaim marks the scheduling policy reclaiming a whole running
	// graphlet from an over-share tenant; Index holds the number of
	// running tasks aborted and Label the victim tenant.
	EvReclaim
	// EvTenantShare records one tenant's deserved share at a preemption
	// decision point; Label holds the tenant, Index the running-task
	// count, and Process the fractional deserved share in executors.
	EvTenantShare
	// EvReplicate marks a finished task's buffered output being replicated
	// to extra Cache Workers; Graphlet holds the copy count and Machine the
	// primary replica's machine.
	EvReplicate
	// EvReplicaServed marks recovery promoting a surviving replica after
	// the serving copy's worker died — no recompute needed; Machine holds
	// the new serving machine.
	EvReplicaServed
	// EvShuffleAdapted marks the load-observed selector overriding the
	// static threshold choice for an edge; Label holds
	// "static->adapted|reason".
	EvShuffleAdapted
)

// String names the kind for counters and hashes.
func (k Kind) String() string {
	switch k {
	case EvJobSubmit:
		return "job_submit"
	case EvJobDone:
		return "job_done"
	case EvJobFail:
		return "job_fail"
	case EvJobRestart:
		return "job_restart"
	case EvGraphletQueued:
		return "graphlet_queued"
	case EvGraphletDone:
		return "graphlet_done"
	case EvTaskStart:
		return "task_start"
	case EvTaskFinish:
		return "task_finish"
	case EvTaskAbort:
		return "task_abort"
	case EvTaskFail:
		return "task_fail"
	case EvOutputLost:
		return "output_lost"
	case EvResend:
		return "resend"
	case EvShuffleMode:
		return "shuffle_mode"
	case EvShuffleDegraded:
		return "shuffle_degraded"
	case EvMachineFailed:
		return "machine_failed"
	case EvMachineReadOnly:
		return "machine_readonly"
	case EvMachineHealthy:
		return "machine_healthy"
	case EvCacheWorkerLost:
		return "cacheworker_lost"
	case EvFault:
		return "fault"
	case EvReclaim:
		return "reclaim"
	case EvTenantShare:
		return "tenant_share"
	case EvReplicate:
		return "replicate"
	case EvReplicaServed:
		return "replica_served"
	case EvShuffleAdapted:
		return "shuffle_adapted"
	}
	return "invalid"
}

// Event is one recorded observation. Fields not meaningful for a kind are
// zero; see the Kind constants for which fields each kind carries.
type Event struct {
	T        sim.Time
	Kind     Kind
	Job      string
	Stage    string // task stage, or edge source for shuffle events
	To       string // edge target for shuffle events
	Index    int    // task index, or kind-specific count
	Attempt  int
	Graphlet int
	Executor int // -1 when unknown
	Machine  int // -1 when unknown
	Label    string
	Bytes    int64
	// Phase breakdown in seconds (EvTaskFinish only).
	Launch, Read, Process, Write float64
}

// Recorder accumulates the event stream and owns the metric registry.
// The zero value is not used; call New. A nil *Recorder is a valid,
// disabled recorder: every method no-ops.
type Recorder struct {
	clock  func() sim.Time
	events []Event
	reg    *Registry
}

// New returns an enabled recorder with a fresh registry. The clock reads
// zero until SetClock is called (drivers point it at the simulation
// engine's virtual clock).
func New() *Recorder {
	return &Recorder{reg: NewRegistry()}
}

// SetClock installs the virtual-time source used to stamp events. The
// simrun driver points it at its engine's Now.
func (r *Recorder) SetClock(fn func() sim.Time) {
	if r == nil {
		return
	}
	r.clock = fn
}

// Enabled reports whether the recorder actually records.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry returns the recorder's metric registry (nil for a nil
// recorder; Registry methods are themselves nil-safe).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Events returns the recorded stream (the recorder's own slice; callers
// must not mutate it).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

func (r *Recorder) now() sim.Time {
	if r.clock == nil {
		return 0
	}
	return r.clock()
}

func (r *Recorder) rec(e Event) {
	if r == nil {
		return
	}
	e.T = r.now()
	r.events = append(r.events, e)
	r.reg.Count("event."+e.Kind.String(), 1)
}

// JobSubmitted records job admission.
func (r *Recorder) JobSubmitted(job string, stages, tasks, graphlets int) {
	r.rec(Event{Kind: EvJobSubmit, Job: job, Index: stages, Attempt: tasks, Graphlet: graphlets, Executor: -1, Machine: -1})
}

// JobCompleted records successful completion.
func (r *Recorder) JobCompleted(job string) {
	r.rec(Event{Kind: EvJobDone, Job: job, Executor: -1, Machine: -1})
}

// JobFailed records abandonment.
func (r *Recorder) JobFailed(job, reason string) {
	r.rec(Event{Kind: EvJobFail, Job: job, Label: reason, Executor: -1, Machine: -1})
}

// JobRestarted records a JobRestart-policy reset.
func (r *Recorder) JobRestarted(job string) {
	r.rec(Event{Kind: EvJobRestart, Job: job, Executor: -1, Machine: -1})
}

// GraphletQueued records a graphlet registering with the scheduler.
func (r *Recorder) GraphletQueued(job string, g, pending int) {
	r.rec(Event{Kind: EvGraphletQueued, Job: job, Graphlet: g, Index: pending, Executor: -1, Machine: -1})
}

// GraphletDone records a graphlet finishing its last task.
func (r *Recorder) GraphletDone(job string, g int) {
	r.rec(Event{Kind: EvGraphletDone, Job: job, Graphlet: g, Executor: -1, Machine: -1})
}

// TaskStarted records a task attempt launching.
func (r *Recorder) TaskStarted(job, stage string, index, attempt, graphlet, executor int, reason string) {
	r.rec(Event{Kind: EvTaskStart, Job: job, Stage: stage, Index: index, Attempt: attempt,
		Graphlet: graphlet, Executor: executor, Machine: -1, Label: reason})
}

// TaskFinished records a successful attempt with its phase breakdown in
// seconds. The work histogram feeds the registry snapshot.
func (r *Recorder) TaskFinished(job, stage string, index, attempt, executor int, launch, read, process, write float64) {
	if r == nil {
		return
	}
	r.rec(Event{Kind: EvTaskFinish, Job: job, Stage: stage, Index: index, Attempt: attempt,
		Executor: executor, Machine: -1, Launch: launch, Read: read, Process: process, Write: write})
	r.reg.Observe("task.work_s", 0, 600, 60, launch+read+process+write)
}

// TaskAborted records a cancelled attempt.
func (r *Recorder) TaskAborted(job, stage string, index, attempt, executor int) {
	r.rec(Event{Kind: EvTaskAbort, Job: job, Stage: stage, Index: index, Attempt: attempt,
		Executor: executor, Machine: -1})
}

// TaskFailed records a detected failure with its kind/channel label.
func (r *Recorder) TaskFailed(job, stage string, index, attempt int, kind string) {
	r.rec(Event{Kind: EvTaskFail, Job: job, Stage: stage, Index: index, Attempt: attempt,
		Executor: -1, Machine: -1, Label: kind})
}

// OutputLost records a lost buffered output; disposition is "no-step" or
// "rerun".
func (r *Recorder) OutputLost(job, stage string, index int, disposition string) {
	r.rec(Event{Kind: EvOutputLost, Job: job, Stage: stage, Index: index,
		Executor: -1, Machine: -1, Label: disposition})
}

// Resend records buffered output being replayed to a relaunched task.
func (r *Recorder) Resend(job, stage string, index int, fromStage string) {
	r.rec(Event{Kind: EvResend, Job: job, Stage: stage, Index: index,
		Executor: -1, Machine: -1, Label: fromStage})
}

// ShuffleModeSelected records the admission-time mode choice for an edge.
func (r *Recorder) ShuffleModeSelected(job, from, to, mode string, edgeSize int, bytes int64) {
	r.rec(Event{Kind: EvShuffleMode, Job: job, Stage: from, To: to, Label: mode,
		Index: edgeSize, Bytes: bytes, Executor: -1, Machine: -1})
}

// ShuffleDegraded records a post-crash mode downgrade for an edge.
func (r *Recorder) ShuffleDegraded(job, from, to, oldMode, newMode string) {
	r.rec(Event{Kind: EvShuffleDegraded, Job: job, Stage: from, To: to,
		Label: oldMode + "->" + newMode, Executor: -1, Machine: -1})
}

// MachineFailed records heartbeat-detected machine death.
func (r *Recorder) MachineFailed(machine int) {
	r.rec(Event{Kind: EvMachineFailed, Machine: machine, Executor: -1})
}

// MachineReadOnly records a health-monitor drain.
func (r *Recorder) MachineReadOnly(machine int) {
	r.rec(Event{Kind: EvMachineReadOnly, Machine: machine, Executor: -1})
}

// MachineHealthy records a machine re-admitted to the pool.
func (r *Recorder) MachineHealthy(machine int) {
	r.rec(Event{Kind: EvMachineHealthy, Machine: machine, Executor: -1})
}

// CacheWorkerLost records a Cache Worker process death.
func (r *Recorder) CacheWorkerLost(machine int) {
	r.rec(Event{Kind: EvCacheWorkerLost, Machine: machine, Executor: -1})
}

// Fault records one applied chaos fault.
func (r *Recorder) Fault(kind, target string) {
	r.rec(Event{Kind: EvFault, Label: kind + "|" + target, Executor: -1, Machine: -1})
}

// GangReclaimed records the policy layer reclaiming a running graphlet
// from an over-share tenant: aborted counts the running tasks returned to
// pending.
func (r *Recorder) GangReclaimed(job string, g, aborted int, tenant string) {
	r.rec(Event{Kind: EvReclaim, Job: job, Graphlet: g, Index: aborted,
		Label: tenant, Executor: -1, Machine: -1})
}

// TenantShare records one tenant's deserved share at a preemption
// decision point.
func (r *Recorder) TenantShare(tenant string, running int, deserved float64) {
	r.rec(Event{Kind: EvTenantShare, Label: tenant, Index: running,
		Process: deserved, Executor: -1, Machine: -1})
}

// Replicated records a finished task's output being copied to extra Cache
// Workers; copies is the total copy count (primary included), machine the
// primary's machine.
func (r *Recorder) Replicated(job, stage string, index, attempt, copies, machine int) {
	r.rec(Event{Kind: EvReplicate, Job: job, Stage: stage, Index: index, Attempt: attempt,
		Graphlet: copies, Machine: machine, Executor: -1})
}

// ReplicaServed records recovery failing a read over to a surviving
// replica instead of recomputing; machine is the new serving machine.
func (r *Recorder) ReplicaServed(job, stage string, index, machine int) {
	r.rec(Event{Kind: EvReplicaServed, Job: job, Stage: stage, Index: index,
		Machine: machine, Executor: -1})
}

// ShuffleAdapted records the load-observed selector overriding the static
// threshold mode for an edge, with the reason tag.
func (r *Recorder) ShuffleAdapted(job, from, to, staticMode, adaptedMode, reason string) {
	r.rec(Event{Kind: EvShuffleAdapted, Job: job, Stage: from, To: to,
		Label: staticMode + "->" + adaptedMode + "|" + reason, Executor: -1, Machine: -1})
}

// FNV-1a, the same construction the chaos auditor uses for its trace hash.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// StreamHash folds every recorded event into an FNV-1a hash: the
// determinism witness. Two runs of the same seed must produce identical
// hashes (and, stronger, byte-identical exports).
func (r *Recorder) StreamHash() uint64 {
	var h uint64 = fnv1aOffset
	if r == nil {
		return h
	}
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnv1aPrime
		}
	}
	for i := range r.events {
		e := &r.events[i]
		fold(fmt.Sprintf("%d|%s|%s|%s|%s|%d|%d|%d|%d|%d|%s|%d|%g|%g|%g|%g\n",
			e.T, e.Kind, e.Job, e.Stage, e.To, e.Index, e.Attempt, e.Graphlet,
			e.Executor, e.Machine, e.Label, e.Bytes, e.Launch, e.Read, e.Process, e.Write))
	}
	return h
}
