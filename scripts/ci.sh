#!/usr/bin/env bash
# Repository gate: gofmt, vet, swiftvet (the project's own static
# analyzers — see DESIGN.md "Static analysis"), race-test everything,
# run the fixed-seed chaos
# soak (deterministic fault schedules + scheduler invariant auditor),
# build the fuzz targets so they cannot rot, and smoke the benchmark
# suites (one iteration each) so a bench-only compile break or panic is
# caught here, not at measurement time. Fuzz *exploration* is not run
# here — CI stays deterministic; run it manually with
#   go test ./internal/sqlparse -fuzz FuzzParse -fuzztime 30s
#   go test ./internal/rpc -fuzz FuzzBatchCodec -fuzztime 30s
#
# Usage: scripts/ci.sh [chaos-seeds]   (default 8)
set -euo pipefail

cd "$(dirname "$0")/.."
SEEDS="${1:-8}"
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP"' EXIT

echo "== gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== swiftvet ./... (project analyzers; swiftvet -json artifact for tooling)"
go build -o "$TRACE_TMP/swiftvet" ./cmd/swiftvet
ARTIFACTS_DIR="${ARTIFACTS_DIR:-artifacts}"
mkdir -p "$ARTIFACTS_DIR"
SWIFTVET_START="$(date +%s)"
# -json exits 1 on findings just like the plain run; the artifact is
# written either way so a red gate still ships its machine-readable list.
"$TRACE_TMP/swiftvet" -json ./... > "$ARTIFACTS_DIR/swiftvet.json"
SWIFTVET_ELAPSED="$(( $(date +%s) - SWIFTVET_START ))"
echo "swiftvet: clean in ${SWIFTVET_ELAPSED}s (artifact: $ARTIFACTS_DIR/swiftvet.json)"
if [ "$SWIFTVET_ELAPSED" -gt 60 ]; then
    echo "swiftvet: full-tree run took ${SWIFTVET_ELAPSED}s (>60s budget) — profile the call-graph build" >&2
    exit 1
fi

echo "== swiftvet -changed smoke (incremental subset + stale fallback)"
"$TRACE_TMP/swiftvet" -changed internal/core/controller.go 2> "$TRACE_TMP/changed.err"
grep -q 'analyzing .* of .* packages' "$TRACE_TMP/changed.err"
"$TRACE_TMP/swiftvet" -changed go.mod 2> "$TRACE_TMP/stale.err"
grep -q 'analyzing the full tree' "$TRACE_TMP/stale.err"

echo "== go test -race ./..."
go test -race ./...

echo "== chaos soak ($SEEDS seeds, incl. thundering-herd admission storm + fair-share policy)"
go test ./internal/chaos/ -run 'TestSoak$|TestSoakDeterminism|TestThunderingHerd|TestFairShareSoak' \
    -chaos.seeds="$SEEDS" -count=1

echo "== trace determinism smoke (two seeded runs, byte-identical)"
go run ./cmd/swiftsim -job q9 -machines 20 -executors 8 -seed 7 \
    -trace "$TRACE_TMP/a.json" > /dev/null
go run ./cmd/swiftsim -job q9 -machines 20 -executors 8 -seed 7 \
    -trace "$TRACE_TMP/b.json" > /dev/null
cmp "$TRACE_TMP/a.json" "$TRACE_TMP/b.json"

echo "== fair-share smoke (seeded 3-tenant burst: reclaims, no starvation, deterministic hash)"
# -verify re-runs the seed and exits non-zero on any hash mismatch; the
# greps then require actual gang reclaims and at least one completed job
# for every tenant (no starvation).
go run ./cmd/swiftchaos -fair -seed 2 -seeds 1 -verify | tee "$TRACE_TMP/fair.out"
grep -Eq 'reclaims=[1-9]' "$TRACE_TMP/fair.out"
grep -Eq 'a\[done=[1-9]' "$TRACE_TMP/fair.out"
grep -Eq 'b\[done=[1-9]' "$TRACE_TMP/fair.out"
grep -Eq 'c\[done=[1-9]' "$TRACE_TMP/fair.out"

echo "== replicated-shuffle smoke (Cache-Worker crashes on an R=3 store: failover only, zero recomputes)"
# -shuffle soaks with 3-way output replication under a Cache-Worker-crash-only
# profile; -verify re-runs the seed and exits non-zero on a hash mismatch.
# The greps then require real failovers (replica-hits > 0) and that no lost
# output ever fell back to producer recompute.
go run ./cmd/swiftchaos -shuffle -seed 1 -seeds 1 -verify | tee "$TRACE_TMP/shuffle.out"
grep -Eq 'replica-hits=[1-9]' "$TRACE_TMP/shuffle.out"
grep -Eq 'recomputes=0' "$TRACE_TMP/shuffle.out"

echo "== shuffle recovery experiment smoke (replica arm strictly cheaper than recompute)"
go run ./cmd/swiftbench -reduced -run shufflerecovery > "$TRACE_TMP/shufflerecovery.out"
grep -q 'replica' "$TRACE_TMP/shufflerecovery.out"

echo "== parallel sweep determinism smoke (per-seed obs hashes, serial vs parallel)"
SWEEP="fig3,fig9a,fig12,fig14,table1"
for SWEEP_SEED in 1 7 13; do
    go run ./cmd/swiftbench -reduced -seed "$SWEEP_SEED" -run "$SWEEP" -hashes -workers 1 \
        > "$TRACE_TMP/sweep-serial-$SWEEP_SEED.txt"
    go run ./cmd/swiftbench -reduced -seed "$SWEEP_SEED" -run "$SWEEP" -hashes -workers 0 \
        > "$TRACE_TMP/sweep-parallel-$SWEEP_SEED.txt"
    cmp "$TRACE_TMP/sweep-serial-$SWEEP_SEED.txt" "$TRACE_TMP/sweep-parallel-$SWEEP_SEED.txt"
done

echo "== swiftd overload smoke (admission control end to end)"
go build -o "$TRACE_TMP/swiftd" ./cmd/swiftd
go build -o "$TRACE_TMP/swiftsim" ./cmd/swiftsim
"$TRACE_TMP/swiftd" -addr 127.0.0.1:0 -addrfile "$TRACE_TMP/swiftd.addr" \
    -machines 4 -executors 2 -maxqueue 8 -rate 20 -burst 4 -budget 64 \
    -timescale 200 > "$TRACE_TMP/swiftd.log" 2>&1 &
SWIFTD_PID=$!
for _ in $(seq 1 50); do
    [ -s "$TRACE_TMP/swiftd.addr" ] && break
    sleep 0.1
done
[ -s "$TRACE_TMP/swiftd.addr" ] || { echo "swiftd never bound" >&2; cat "$TRACE_TMP/swiftd.log" >&2; exit 1; }
"$TRACE_TMP/swiftsim" -submit "$(cat "$TRACE_TMP/swiftd.addr")" -jobs 80 -seed 11 -drain \
    | tee "$TRACE_TMP/submit.out"
# An 80-job burst against a queue of 8 must both queue and shed.
grep -Eq 'queued=[1-9]' "$TRACE_TMP/submit.out"
grep -Eq 'shed=[1-9]' "$TRACE_TMP/submit.out"
wait "$SWIFTD_PID"   # drain must exit 0

echo "== fuzz targets build"
go test -run '^$' -c -o /dev/null ./internal/sqlparse/
go test -run '^$' -c -o /dev/null ./internal/rpc/

echo "== bench smoke (1 iteration)"
go test -run '^$' -bench . -benchtime 1x ./internal/engine/ ./internal/tpch/ ./internal/exp/ > /dev/null

echo "ci: all green"
