#!/usr/bin/env bash
# Data-plane health check: vet, race-test the engine, run the engine
# microbenchmarks and record them as BENCH_engine.json at the repo root.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s; e.g. "100x" for a quick run)
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1s}"

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/engine/..."
go test -race ./internal/engine/...

echo "== go test -bench . ./internal/engine/ ./internal/tpch/ ./internal/exp/ (benchtime=$BENCHTIME)"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT
go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" ./internal/engine/ ./internal/tpch/ ./internal/exp/ | tee "$RAW"

# Parse the standard bench output lines:
#   BenchmarkName-8   1234   5678 ns/op   90 B/op   12 allocs/op
awk '
BEGIN { print "[" }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     ns = $i
        if ($(i+1) == "B/op")      bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, $2, ns, (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { print "\n]" }
' "$RAW" > BENCH_engine.json

echo "== wrote BENCH_engine.json ($(grep -c '"name"' BENCH_engine.json) entries)"
