// Quickstart: build a two-stage DAG job, let Swift partition and schedule
// it, and run it on the real in-process engine — a distributed word count
// in ~60 lines of application code.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"swift/internal/dag"
	"swift/internal/engine"
	"swift/internal/graphlet"
)

func main() {
	// 1. Start a local Swift deployment: 4 machines × 4 pre-launched
	// executors, production scheduling options.
	e := engine.New(engine.DefaultConfig())
	defer e.Close()

	// 2. Register a dataset: 100k words in 6 partitions.
	words := []string{"swift", "graphlet", "shuffle", "cache", "worker", "admin"}
	rng := rand.New(rand.NewSource(1))
	rows := make([]engine.Row, 100000)
	for i := range rows {
		rows[i] = engine.Row{words[rng.Intn(len(words))]}
	}
	e.RegisterTable(engine.NewTable("words", engine.Schema{"word"}, rows, 6))

	// 3. Describe the job as a DAG: scan -> count, pipelined shuffle.
	job := dag.NewBuilder("wordcount").
		Stage("scan", 6, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("count", 3, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpAdhocSink)).
		Pipeline("scan", "count", 1<<20).
		MustBuild()

	// Show what the scheduler will do with it.
	gs, _ := graphlet.Partition(job)
	fmt.Printf("job %s partitions into %d graphlet(s): %v\n", job.ID, len(gs), gs[0].Stages)

	// 4. Attach task bodies and run.
	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("words")
			if err != nil {
				return err
			}
			return ctx.EmitByKey("count", part, []int{0})
		},
		"count": func(ctx *engine.TaskContext) error {
			rows, err := ctx.Input("scan")
			if err != nil {
				return err
			}
			ctx.Sink(engine.HashAggregate(rows, []int{0}, []engine.Agg{{Kind: engine.AggCount, Col: 0}}))
			return nil
		},
	}
	out, err := e.Run(job, plans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("word counts:")
	for _, r := range out {
		fmt.Printf("  %-10s %d\n", r[0], r[1])
	}
	st := e.Store().Stats()
	fmt.Printf("shuffle segments written: %d, read: %d\n", st.Puts, st.Gets)
}
