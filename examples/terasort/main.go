// Terasort example: the Table I workload at two scales. A miniature sort
// runs for real on the in-process engine (verifying global order), then
// the paper's job sizes run on the simulated 100-node cluster under Swift
// and Spark, reproducing the Table I speedup trend.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/engine"
	"swift/internal/shuffle"
	"swift/internal/simrun"
	"swift/internal/tpch"
)

func main() {
	realSort()
	fmt.Println()
	simulatedTableI()
}

// realSort sorts 50k random keys through a 6x4 map/reduce DAG on the real
// engine and verifies the output is globally ordered.
func realSort() {
	e := engine.New(engine.DefaultConfig())
	defer e.Close()
	const n = 50000
	rng := rand.New(rand.NewSource(2))
	rows := make([]engine.Row, n)
	for i := range rows {
		rows[i] = engine.Row{int64(rng.Intn(1 << 30))}
	}
	e.RegisterTable(engine.NewTable("records", engine.Schema{"key"}, rows, 6))

	reducers := 4
	bounds := make([]engine.Row, reducers-1)
	for i := range bounds {
		bounds[i] = engine.Row{int64((i + 1) * (1 << 30) / reducers)}
	}
	job := dag.NewBuilder("terasort-real").
		StageOpt(&dag.Stage{Name: "map", Tasks: 6, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpTableScan), dag.Op(dag.OpMergeSort), dag.Op(dag.OpShuffleWrite)}}).
		StageOpt(&dag.Stage{Name: "reduce", Tasks: reducers, Idempotent: true,
			Operators: []dag.Operator{dag.Op(dag.OpShuffleRead), dag.Op(dag.OpMergeSort), dag.Op(dag.OpAdhocSink)}}).
		Barrier("map", "reduce", 1<<20).
		MustBuild()
	plans := engine.Plans{
		"map": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("records")
			if err != nil {
				return err
			}
			sorted := append([]engine.Row(nil), part...)
			engine.SortRows(sorted, []int{0})
			return ctx.EmitByRange("reduce", sorted, []int{0}, bounds)
		},
		"reduce": func(ctx *engine.TaskContext) error {
			runs, err := ctx.InputRuns("map")
			if err != nil {
				return err
			}
			merged := engine.MergeSortedRuns(runs, []int{0})
			out := make([]engine.Row, len(merged))
			for i, r := range merged {
				out[i] = engine.Row{int64(ctx.Index()), r[0]}
			}
			ctx.Sink(out)
			return nil
		},
	}
	out, err := e.Run(job, plans)
	if err != nil {
		log.Fatal(err)
	}
	engine.SortRows(out, []int{0, 1})
	prev := int64(-1)
	for _, r := range out {
		if v := r[1].(int64); v < prev {
			log.Fatal("output not globally sorted")
		} else {
			prev = v
		}
	}
	fmt.Printf("real engine: sorted %d keys across %d reducers — globally ordered ✓\n", len(out), reducers)
}

// simulatedTableI reproduces Table I on the simulated cluster.
func simulatedTableI() {
	fmt.Printf("Table I (simulated 100-node cluster; paper speedups 3.07/3.96/7.06/14.18):\n")
	fmt.Printf("%-12s %9s %9s %8s %8s\n", "job_size", "spark_s", "swift_s", "speedup", "mode")
	th := shuffle.DefaultThresholds()
	for _, s := range []int{250, 500, 1000, 1500} {
		sw := run(tpch.Terasort(s, s), baseline.Swift())
		sp := run(tpch.Terasort(s, s), baseline.Spark())
		fmt.Printf("%-12s %9.1f %9.1f %8.2f %8s\n",
			fmt.Sprintf("%dx%d", s, s), sp, sw, sp/sw, th.Select(s*s))
	}
}

func run(job *dag.Job, opts core.Options) float64 {
	r := simrun.New(simrun.Config{Cluster: cluster.Paper100(), Options: opts, Seed: 1})
	r.SubmitAt(0, job)
	res := r.Run()
	jr := res.Jobs[job.ID]
	if jr == nil || !jr.Completed {
		log.Fatalf("%s did not complete", job.ID)
	}
	return jr.Duration()
}
