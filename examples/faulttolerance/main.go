// Fault-tolerance example: Section IV end to end. First the Fig. 14
// experiment on the simulator — failures injected into TPC-H Q13 at five
// points, comparing Swift's fine-grained recovery with whole-job restart —
// then a live kill on the real engine, showing the job still produces the
// exact answer.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"reflect"
	"time"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/engine"
	"swift/internal/sim"
	"swift/internal/simrun"
	"swift/internal/tpch"
)

func main() {
	simulated()
	fmt.Println()
	live()
}

func simulated() {
	ccfg := cluster.Paper100()
	clean := run(ccfg, baseline.Swift(), "", 0)
	fmt.Printf("Q13 clean run: %.1fs (normalized to 100)\n", clean)
	fmt.Printf("%-10s %-6s %16s %18s\n", "inject_at", "stage", "swift_slowdown", "restart_slowdown")
	for _, inj := range []struct {
		pct   int
		stage string
	}{{20, "M2"}, {40, "J3"}, {60, "R4"}, {80, "R5"}, {100, "R6"}} {
		at := clean * float64(inj.pct) / 100 * 0.98
		sw := run(ccfg, baseline.Swift(), inj.stage, at)
		re := run(ccfg, baseline.JobRestart(baseline.Swift()), inj.stage, at)
		fmt.Printf("%-10d %-6s %15.1f%% %17.1f%%\n", inj.pct, inj.stage, (sw/clean-1)*100, (re/clean-1)*100)
	}
}

func run(ccfg cluster.Config, opts core.Options, failStage string, failAt float64) float64 {
	r := simrun.New(simrun.Config{Cluster: ccfg, Options: opts, Seed: 1})
	job := tpch.Q13()
	r.SubmitAt(0, job)
	if failStage != "" {
		r.InjectTaskFailureAt(sim.FromSeconds(failAt), job.ID, failStage, core.FailCrash)
	}
	res := r.Run()
	jr := res.Jobs[job.ID]
	if jr == nil || !jr.Completed {
		log.Fatal("Q13 did not complete")
	}
	return jr.Duration()
}

// live kills a running aggregation task on the real engine mid-job and
// verifies the recovered run's output is exact.
func live() {
	e := engine.New(engine.DefaultConfig())
	defer e.Close()
	words := []string{"alpha", "beta", "gamma", "delta"}
	rng := rand.New(rand.NewSource(5))
	rows := make([]engine.Row, 40000)
	want := map[string]int64{}
	for i := range rows {
		w := words[rng.Intn(len(words))]
		rows[i] = engine.Row{w}
		want[w]++
	}
	e.RegisterTable(engine.NewTable("words", engine.Schema{"word"}, rows, 6))

	job := dag.NewBuilder("live-ft").
		Stage("scan", 6, dag.Op(dag.OpTableScan), dag.Op(dag.OpShuffleWrite)).
		Stage("count", 3, dag.Op(dag.OpShuffleRead), dag.Op(dag.OpHashAggregate), dag.Op(dag.OpAdhocSink)).
		Pipeline("scan", "count", 1<<20).
		MustBuild()
	plans := engine.Plans{
		"scan": func(ctx *engine.TaskContext) error {
			part, err := ctx.TablePartition("words")
			if err != nil {
				return err
			}
			return ctx.EmitByKey("count", part, []int{0})
		},
		"count": func(ctx *engine.TaskContext) error {
			time.Sleep(30 * time.Millisecond) // give the killer a window
			in, err := ctx.Input("scan")
			if err != nil {
				return err
			}
			ctx.Sink(engine.HashAggregate(in, []int{0}, []engine.Agg{{Kind: engine.AggCount, Col: 0}}))
			return nil
		},
	}
	wait, err := e.Submit(job, plans)
	if err != nil {
		log.Fatal(err)
	}
	killed := false
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		if e.FailTask("live-ft", "count") {
			killed = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	out, err := wait()
	if err != nil {
		log.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range out {
		got[r[0].(string)] += r[1].(int64)
	}
	if !reflect.DeepEqual(got, want) {
		log.Fatalf("wrong counts after recovery: %v != %v", got, want)
	}
	fmt.Printf("real engine: killed a running task = %v; recovered result exact ✓ (%v)\n", killed, got)
}
