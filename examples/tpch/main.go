// TPC-H example: the paper's Fig. 1 → Fig. 4 pipeline end to end. The Q9
// text in the Swift language is parsed and planned into a DAG, partitioned
// into graphlets, and then both the published Q9 physical plan and the
// SQL-derived one run on the simulated 100-node cluster under Swift and
// the Spark baseline — reproducing the per-query slice of Fig. 9(a).
package main

import (
	"fmt"
	"log"

	"swift/internal/baseline"
	"swift/internal/cluster"
	"swift/internal/core"
	"swift/internal/dag"
	"swift/internal/graphlet"
	"swift/internal/simrun"
	"swift/internal/sqlparse"
	"swift/internal/tpch"
)

func main() {
	// Parse the paper's Fig. 1 text.
	stmt, err := sqlparse.Parse(tpch.Q9SwiftSQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed Q9: %d select items, %d joins in sub-select, group by %v, limit %d\n",
		len(stmt.Items), len(stmt.From.Sub.Joins), stmt.GroupBy, stmt.Limit)

	planned, err := sqlparse.ParseAndPlan("q9-sql", tpch.Q9SwiftSQL)
	if err != nil {
		log.Fatal(err)
	}
	gs, _ := graphlet.Partition(planned)
	fmt.Printf("SQL-derived plan: %d stages, %d tasks, %d graphlets\n",
		planned.NumStages(), planned.NumTasks(), len(gs))

	// The published physical plan (Fig. 4) with its exact task counts.
	paper := tpch.Q9()
	pgs, _ := graphlet.Partition(paper)
	fmt.Printf("published plan:   %d stages, %d tasks, %d graphlets\n", paper.NumStages(), paper.NumTasks(), len(pgs))
	for _, g := range pgs {
		fmt.Printf("  %s\n", g)
	}

	// Run both plans under Swift and Spark on the 100-node cluster.
	fmt.Printf("\n%-16s %10s %10s %8s\n", "plan", "swift_s", "spark_s", "speedup")
	for _, p := range []*dag.Job{paper, planned} {
		sw := run(p.Clone(), baseline.Swift())
		sp := run(p.Clone(), baseline.Spark())
		fmt.Printf("%-16s %10.1f %10.1f %8.2f\n", p.ID, sw, sp, sp/sw)
	}
}

func run(job *dag.Job, opts core.Options) float64 {
	r := simrun.New(simrun.Config{Cluster: cluster.Paper100(), Options: opts, Seed: 1})
	r.SubmitAt(0, job)
	res := r.Run()
	jr := res.Jobs[job.ID]
	if jr == nil || !jr.Completed {
		log.Fatalf("%s did not complete", job.ID)
	}
	return jr.Duration()
}
