// Top-level benchmarks: one per table/figure of the paper's evaluation.
// Each benchmark runs the reduced-size configuration of the corresponding
// experiment (fast enough for CI) and reports the experiment's headline
// metric via b.ReportMetric, so `go test -bench=.` regenerates the whole
// evaluation in miniature. cmd/swiftbench runs the paper-scale versions.
package swift_test

import (
	"testing"

	"swift/internal/exp"
	"swift/internal/shuffle"
)

func benchCfg(i int) exp.Config { return exp.Config{Reduced: true, Seed: int64(i + 1)} }

func BenchmarkFig3IdleRatio(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := exp.Fig3IdleRatio(benchCfg(i))
		sum := 0.0
		for _, r := range rows {
			sum += r.IdleRatioPct
		}
		last = sum / float64(len(rows))
	}
	b.ReportMetric(last, "idle_%")
}

func BenchmarkFig8TraceCharacteristics(b *testing.B) {
	var last exp.Fig8Stats
	for i := 0; i < b.N; i++ {
		last = exp.Fig8TraceCharacteristics(benchCfg(i))
	}
	b.ReportMetric(last.MeanRuntimeSec, "mean_runtime_s")
	b.ReportMetric(last.FracTasksUnder80*100, "pct_jobs_le80_tasks")
}

func BenchmarkFig9aTPCH(b *testing.B) {
	var last exp.Fig9aResult
	for i := 0; i < b.N; i++ {
		last = exp.Fig9aTPCH(benchCfg(i))
	}
	b.ReportMetric(last.TotalSpeedup, "total_speedup_x")
}

func BenchmarkFig9bQ9Phases(b *testing.B) {
	var sparkLaunch, swiftLaunch float64
	for i := 0; i < b.N; i++ {
		sparkLaunch, swiftLaunch = 0, 0
		for _, r := range exp.Fig9bQ9Phases(benchCfg(i)) {
			if r.System == "Spark" {
				sparkLaunch += r.Launch
			} else {
				swiftLaunch += r.Launch
			}
		}
	}
	b.ReportMetric(sparkLaunch, "spark_launch_s")
	b.ReportMetric(swiftLaunch, "swift_launch_s")
}

func BenchmarkTable1Terasort(b *testing.B) {
	var last []exp.Table1Row
	for i := 0; i < b.N; i++ {
		last = exp.Table1Terasort(benchCfg(i))
	}
	b.ReportMetric(last[len(last)-1].Speedup, "largest_speedup_x")
}

func BenchmarkFig10ExecutorTimeline(b *testing.B) {
	var last exp.Fig10Result
	for i := 0; i < b.N; i++ {
		last = exp.Fig10ExecutorTimeline(benchCfg(i))
	}
	b.ReportMetric(last.SpeedupOverJetScope["Swift"], "swift_vs_jetscope_x")
	b.ReportMetric(last.SpeedupOverJetScope["Bubble"], "bubble_vs_jetscope_x")
}

func BenchmarkFig11LatencyCDF(b *testing.B) {
	var last exp.Fig11Result
	for i := 0; i < b.N; i++ {
		last = exp.Fig11LatencyCDF(benchCfg(i))
	}
	b.ReportMetric(last.FracJetScopeOver2x*100, "pct_jetscope_over_2x")
	b.ReportMetric(last.MeanBubbleRatio, "bubble_latency_ratio")
}

func BenchmarkFig12ShuffleModes(b *testing.B) {
	var cells []exp.Fig12Cell
	for i := 0; i < b.N; i++ {
		cells = exp.Fig12ShuffleModes(benchCfg(i))
	}
	for _, c := range cells {
		if c.Class == shuffle.LargeShuffle && c.Mode == shuffle.Local {
			b.ReportMetric(c.Normalized, "large_local_vs_direct")
		}
		if c.Class == shuffle.MediumShuffle && c.Mode == shuffle.Remote {
			b.ReportMetric(c.Normalized, "medium_remote_vs_direct")
		}
	}
}

func BenchmarkFig13Q13Detail(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(exp.Fig13Q13Detail())
	}
	b.ReportMetric(float64(n), "stages")
}

func BenchmarkFig14FaultInjection(b *testing.B) {
	var rows []exp.Fig14Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig14FaultInjection(benchCfg(i))
	}
	worstSwift, worstRestart := 0.0, 0.0
	for _, r := range rows {
		if r.SwiftSlowdownPct > worstSwift {
			worstSwift = r.SwiftSlowdownPct
		}
		if r.RestartSlowdownPct > worstRestart {
			worstRestart = r.RestartSlowdownPct
		}
	}
	b.ReportMetric(worstSwift, "swift_worst_slowdown_%")
	b.ReportMetric(worstRestart, "restart_worst_slowdown_%")
}

func BenchmarkFig15TraceFailures(b *testing.B) {
	var last exp.Fig15Result
	for i := 0; i < b.N; i++ {
		last = exp.Fig15TraceFailures(benchCfg(i))
	}
	b.ReportMetric(last.SwiftSlowdownPct, "swift_slowdown_%")
	b.ReportMetric(last.RestartSlowdownPct, "restart_slowdown_%")
}

func BenchmarkAblationAdaptiveShuffle(b *testing.B) {
	var rows []exp.AblationShuffleRow
	for i := 0; i < b.N; i++ {
		rows = exp.AblationAdaptiveShuffle(benchCfg(i))
	}
	for _, r := range rows {
		if r.Policy == "adaptive" {
			b.ReportMetric(r.MeanSec, "adaptive_mean_s")
		}
		if r.Policy == "direct" {
			b.ReportMetric(r.MeanSec, "direct_mean_s")
		}
	}
}

func BenchmarkAblationPartition(b *testing.B) {
	var rows []exp.AblationPartitionRow
	for i := 0; i < b.N; i++ {
		rows = exp.AblationPartition(benchCfg(i))
	}
	for _, r := range rows {
		switch r.Policy {
		case "graphlet":
			b.ReportMetric(r.MakespanSec, "graphlet_makespan_s")
		case "whole-job":
			b.ReportMetric(r.MakespanSec, "wholejob_makespan_s")
		}
	}
}

func BenchmarkFig16Scalability(b *testing.B) {
	var rows []exp.Fig16Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig16Scalability(benchCfg(i))
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Speedup, "speedup_at_max")
	b.ReportMetric(last.Speedup/last.Ideal*100, "pct_of_ideal")
}
