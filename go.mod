module swift

go 1.22
